"""Simulated CUDA context: an SM partition with prioritized stream slots.

A context owns

* a **nominal SM allocation** (``nominal_sms``) — the hard cap the device
  allocator enforces (MPS active-thread-percentage semantics);
* a fixed set of streams (2 hardware-high + 2 hardware-low by default),
  bounding resident concurrency at four stages (Section IV-B3);
* three EDF wait queues, one per scheduler priority level, holding stages
  that have been *assigned* to this context but have no free stream yet.

Dispatch order follows the paper: the highest non-empty priority level
first, earliest absolute deadline first within a level.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.gpu.stream import PREFERRED_CLASS, CudaStream, StreamClass

_QUEUE_SEQ = itertools.count()


class SimContext:
    """One partition of the simulated GPU.

    Parameters
    ----------
    context_id:
        Stable identifier within the pool.
    nominal_sms:
        Hard SM cap (may be fractional; over-subscribed pools configure
        more total nominal SMs than the device physically has).
    high_streams / low_streams:
        Number of hardware high-/low-priority streams.
    allow_stream_borrowing:
        When ``True`` (default) a stage may occupy an idle stream of the
        non-preferred class instead of waiting — the work-conserving
        behaviour real stream priorities exhibit (priorities order work
        distribution, they do not reserve slots).  ``False`` gives the
        strict interpretation; the ablation benchmark compares both.
    """

    def __init__(
        self,
        context_id: int,
        nominal_sms: float,
        high_streams: int = 2,
        low_streams: int = 2,
        allow_stream_borrowing: bool = True,
    ) -> None:
        if nominal_sms <= 0:
            raise ValueError(f"nominal_sms must be positive, got {nominal_sms}")
        self.context_id = context_id
        self.nominal_sms = nominal_sms
        self.allow_stream_borrowing = allow_stream_borrowing
        self.streams: List[CudaStream] = []
        for index in range(high_streams):
            self.streams.append(CudaStream(index, StreamClass.HIGH))
        for index in range(low_streams):
            self.streams.append(CudaStream(high_streams + index, StreamClass.LOW))
        self._queues: Dict[PriorityLevel, List[Tuple[float, int, StageKernel]]] = {
            level: [] for level in PriorityLevel
        }
        #: Monotonic counter bumped on every stream attach/detach; the device
        #: compares snapshots of it to detect that the resident set (and
        #: therefore the whole allocation) is unchanged since the last settle.
        self.residency_rev = 0
        self._resident_cache: List[StageKernel] = []
        self._resident_cache_rev = -1
        #: Identity of the task whose state the partition is configured for;
        #: used by reconfiguration policies (naive pays to change it).
        self.configured_task: Optional[str] = None

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def enqueue(self, kernel: StageKernel) -> None:
        """Queue an assigned stage, EDF-ordered within its priority level."""
        kernel.context_id = self.context_id
        heapq.heappush(
            self._queues[kernel.priority],
            (kernel.deadline, next(_QUEUE_SEQ), kernel),
        )

    def queued_count(self, level: Optional[PriorityLevel] = None) -> int:
        """Stages waiting for a stream (optionally at one level)."""
        if level is not None:
            return sum(1 for _, _, k in self._queues[level] if not k.aborted)
        return sum(
            1
            for queue in self._queues.values()
            for _, _, k in queue
            if not k.aborted
        )

    def queue_empty(self) -> bool:
        """Whether no stage is waiting for a stream."""
        return self.queued_count() == 0

    def is_idle(self) -> bool:
        """Whether the context has no resident and no queued stage."""
        return not self.resident_kernels() and self.queue_empty()

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    def resident_kernels(self) -> List[StageKernel]:
        """Kernels currently occupying streams, in stream-index order.

        The list is cached and rebuilt only when a stream attach/detach
        moved :attr:`residency_rev` — the allocator and device call this on
        every change point, so the rebuild must not be paid when nothing
        moved.  Callers must treat the result as read-only (a fresh list
        object replaces it on the next residency change, so held references
        stay stable snapshots).

        The stream-index ordering is load-bearing: the vectorised settle
        core (:class:`repro.gpu.table.KernelTable`) assigns one fixed
        table slot per ``(context, stream index)`` pair and relies on this
        iteration order matching slot order, so its ``cumsum``-based
        aggregate sums accumulate in exactly the sequence the scalar
        allocator's loops do (bit-identical traces across re-arm modes).
        """
        if self._resident_cache_rev != self.residency_rev:
            self._resident_cache = [
                s.kernel for s in self.streams if s.kernel is not None
            ]
            self._resident_cache_rev = self.residency_rev
        return self._resident_cache

    def free_streams(self, stream_class: Optional[StreamClass] = None) -> List[CudaStream]:
        """Idle streams, optionally filtered by hardware class."""
        return [
            s
            for s in self.streams
            if not s.busy and (stream_class is None or s.stream_class is stream_class)
        ]

    def dispatch_ready(self) -> List[StageKernel]:
        """Move queued stages onto free streams; return those dispatched.

        Highest priority level first, EDF within a level.  Each stage takes
        an idle stream of its preferred hardware class, falling back to the
        other class when borrowing is enabled.
        """
        dispatched: List[StageKernel] = []
        progressing = True
        while progressing:
            progressing = False
            for level in sorted(PriorityLevel, reverse=True):
                kernel = self._pop_live(level)
                if kernel is None:
                    continue
                stream = self._pick_stream(level)
                if stream is None:
                    # No slot for this level; put the stage back and try the
                    # next (lower) level, which may target the other class.
                    self.enqueue(kernel)
                    continue
                stream.attach(kernel)
                self.residency_rev += 1
                dispatched.append(kernel)
                progressing = True
                break  # restart from the highest level
        return dispatched

    def _pop_live(self, level: PriorityLevel) -> Optional[StageKernel]:
        """Pop the earliest-deadline non-aborted stage of one level."""
        queue = self._queues[level]
        while queue:
            _, _, kernel = heapq.heappop(queue)
            if not kernel.aborted:
                return kernel
        return None

    def _pick_stream(self, level: PriorityLevel) -> Optional[CudaStream]:
        preferred = PREFERRED_CLASS[level]
        candidates = self.free_streams(preferred)
        if not candidates and self.allow_stream_borrowing:
            candidates = self.free_streams()
        return candidates[0] if candidates else None

    def remove(self, kernel: StageKernel) -> None:
        """Detach a kernel wherever it lives (stream or queue).

        Queued copies are tombstoned (``aborted`` kernels are skipped when
        popped), so removal is O(1).
        """
        for stream in self.streams:
            if stream.kernel is kernel:
                stream.detach()
                self.residency_rev += 1
                return
        kernel.aborted = True

    # ------------------------------------------------------------------
    # Estimates used by the SGPRS context-assignment policy
    # ------------------------------------------------------------------
    def backlog_work(self) -> float:
        """Single-SM seconds of work resident + queued on this context."""
        total = sum(k.work_remaining for k in self.resident_kernels())
        for queue in self._queues.values():
            total += sum(k.work_remaining for _, _, k in queue if not k.aborted)
        return total

    def estimated_finish_time(self, now: float) -> float:
        """Crude ETA for draining the current backlog.

        Assumes the backlog runs sequentially at the composite speedup its
        kernels achieve at the context's nominal allocation — an
        intentionally simple estimate, mirroring what an online scheduler
        can actually compute cheaply.
        """
        kernels = self.resident_kernels() + [
            k
            for queue in self._queues.values()
            for _, _, k in queue
            if not k.aborted
        ]
        eta = now
        for kernel in kernels:
            speedup = max(kernel.curve.speedup(self.nominal_sms), 1e-9)
            eta += kernel.setup_remaining + kernel.work_remaining / speedup
        return eta

    def estimate_completion(self, kernel: StageKernel, now: float) -> float:
        """ETA for ``kernel`` if it were assigned to this context now."""
        speedup = max(kernel.curve.speedup(self.nominal_sms), 1e-9)
        own_time = kernel.setup_remaining + kernel.work_remaining / speedup
        if self.queue_empty() and len(self.resident_kernels()) < len(self.streams):
            # Would start immediately, sharing the partition.
            return now + own_time
        return self.estimated_finish_time(now) + own_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimContext({self.context_id}, sms={self.nominal_sms:.1f}, "
            f"resident={len(self.resident_kernels())}, queued={self.queued_count()})"
        )

"""Structure-of-arrays kernel table: the vectorised settle core.

``GpuDevice(rearm="vectorised")`` keeps every resident kernel's hot state
(remaining work, setup, rate, share, revision, completion anchor) in flat
numpy arrays with **one fixed slot per stream** — contexts in device order,
streams in index order — so slot order equals the resident iteration order
of the scalar modes.  :class:`~repro.gpu.kernel.StageKernel` stays the API:
its hot-state attributes are properties that read/write through to the
bound slot, so schedulers, contexts and tests observe identical values in
every mode.

Bit-identity with the scalar modes is the design constraint, not an
accident (``tests/gpu/test_trace_equivalence.py`` pins it).  Three rules
make it hold:

* order-sensitive float sums use ``np.cumsum`` (strictly sequential, and
  therefore bitwise-identical to a left-to-right Python loop) or small
  Python loops — never ``np.sum``, whose pairwise reduction rounds
  differently;
* every whole-array expression mirrors the scalar code path branch by
  branch (:meth:`KernelTable.advance` vs ``StageKernel.advance``,
  :meth:`completion_times` vs ``StageKernel.time_to_completion``, the
  closed-form curve evaluation vs ``CompositeWorkload.speedup``);
* completion anchors for unchanged rates are **never recomputed** — like
  the incremental mode, a slot's armed time moves only when its published
  rate does, so anchored times stay exact instead of drifting by ulps.

The rescale-aware win: the per-slot completion anchors *are* the shared
virtual-time axis.  A ceiling-bound settle (the DRAM/L2
``aggregate_speedup_cap`` regime) that uniformly rescales every resident
rate costs one scalar multiply into the rate array, one whole-array anchor
update, and **one** engine heap operation — the single pending *sentinel*
event that carries the earliest ``(time, stamp)`` pair — where the
incremental mode cancels and re-pushes one event per resident and pays one
speedup-curve evaluation per kernel.  Per-context water-fills and
speedup-curve values are cached and refreshed only when that context's
residency (or the device scale) actually moved.

numpy became a runtime dependency with this module (it was dev-only
before); the scalar modes remain stdlib-only, so the import is guarded
with a pointer at both remedies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised only without numpy
    raise ImportError(
        "the vectorised settle core (rearm='vectorised') requires numpy, "
        "which is a runtime dependency of repro since PR 6 (see "
        "requirements.txt).  Install it with 'pip install numpy', or use "
        "rearm_mode='incremental', which is stdlib-only."
    ) from exc

from repro.gpu.allocator import (
    AllocationParams,
    AllocationResult,
    WaterfillCache,
    intra_context_shares,
)
from repro.gpu.context import SimContext
from repro.gpu.kernel import StageKernel
from repro.speedup.composite import CompositeWorkload
from repro.speedup.model import SaturatingCurve, WidthLimitedCurve

#: Stamp value of slots with no armed completion (stalled or empty); larger
#: than any engine sequence number so it never wins a tie-break.
NO_STAMP = np.iinfo(np.int64).max

#: ``StageKernel.time_to_completion`` treats residual work at or below this
#: as already finished when the rate is zero; mirrored here exactly.
_STALL_WORK_EPS = 1e-15


def _saturating_speedup_array(sigma: float, sms: "np.ndarray") -> "np.ndarray":
    """Element-wise :meth:`SaturatingCurve.speedup`, branch-exact."""
    with np.errstate(divide="ignore", invalid="ignore"):
        saturated = sms / (1.0 + sigma * (sms - 1.0))
    return np.where(sms <= 0.0, 0.0, np.where(sms <= 1.0, sms, saturated))


def _composite_speedup_array(
    curve: CompositeWorkload, sms: "np.ndarray"
) -> "np.ndarray":
    """Element-wise :meth:`CompositeWorkload.speedup` over a share vector.

    Accumulates the per-segment times in segment order, exactly like the
    scalar ``time_at`` loop, so each element is bitwise-identical to the
    scalar call at that share.
    """
    total = np.full(sms.shape, curve.overhead, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        for work, segment in curve.segments:
            clamped = np.minimum(sms, segment.width)
            inner = _saturating_speedup_array(segment.inner.sigma, clamped)
            total = total + work / np.maximum(inner, 1e-12)
        return np.where(sms <= 0.0, 0.0, curve.base_time / total)


class KernelTable:
    """Flat SoA state of every stream slot of a device's context pool.

    One slot per ``(context, stream index)`` pair, fixed at construction;
    empty slots hold zeros (rates/work) so whole-array passes need no
    masking for them.  See the module docstring for the layout rationale
    and the bit-identity rules every method obeys.
    """

    def __init__(
        self,
        contexts: Sequence[SimContext],
        shares_cache: Optional[WaterfillCache] = None,
    ) -> None:
        self.contexts: List[SimContext] = list(contexts)
        #: Optional bit-transparent water-fill memoisation (usually the
        #: owning device's, shared with its scalar allocation path).
        self._shares_cache = shares_cache
        self.offsets: List[int] = []
        total = 0
        for context in self.contexts:
            self.offsets.append(total)
            total += len(context.streams)
        self.n_slots = total
        # Hot per-slot state (the facade properties index these).
        self.occupied = np.zeros(total, dtype=bool)
        self.work_remaining = np.zeros(total, dtype=np.float64)
        self.setup_remaining = np.zeros(total, dtype=np.float64)
        self.rate = np.zeros(total, dtype=np.float64)
        self.share = np.zeros(total, dtype=np.float64)
        self.rate_rev = np.zeros(total, dtype=np.int64)
        # Allocation caches (refreshed per resynced context / scale change).
        self.intra_share = np.zeros(total, dtype=np.float64)
        self.speedup = np.zeros(total, dtype=np.float64)
        self.coloc = np.zeros(total, dtype=np.float64)
        #: Share at which ``speedup`` was last evaluated; NaN = never.
        self._speedup_share = np.full(total, np.nan, dtype=np.float64)
        # Completion anchoring (the virtual-time axis).
        self.armed_time = np.full(total, np.inf, dtype=np.float64)
        self.stamp = np.full(total, NO_STAMP, dtype=np.int64)
        self.kernels: List[Optional[StageKernel]] = [None] * total
        self.slot_of: Dict[int, int] = {}
        # Per-context caches, valid while the context's residency_rev holds.
        n_ctx = len(self.contexts)
        self._last_rev = [-1] * n_ctx
        self._granted = [0.0] * n_ctx
        self._n_resident = [0] * n_ctx
        self._no_change = np.zeros(total, dtype=bool)
        #: Curves vetted (by id) for the closed-form vector fast path.
        self._vectorisable: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Residency sync
    # ------------------------------------------------------------------
    def sync(self) -> List[int]:
        """Mirror stream occupancy into the table; return resynced contexts.

        Lazy: a context is rescanned only when its ``residency_rev`` moved
        since the last sync.  Replaced slots write the outgoing kernel's
        state back to its object (unbinding the facade) before the incoming
        kernel is copied in and bound.
        """
        resynced: List[int] = []
        for ci, context in enumerate(self.contexts):
            rev = context.residency_rev
            if rev == self._last_rev[ci]:
                continue
            self._last_rev[ci] = rev
            resynced.append(ci)
            base = self.offsets[ci]
            for index, stream in enumerate(context.streams):
                slot = base + index
                old = self.kernels[slot]
                new = stream.kernel
                if old is new:
                    continue
                if old is not None:
                    self._clear_slot(slot, old)
                if new is not None:
                    self._fill_slot(slot, new)
        return resynced

    def _fill_slot(self, slot: int, kernel: StageKernel) -> None:
        # Copy object state in *before* binding (the property reads below
        # still hit the object's private attributes).
        self.work_remaining[slot] = kernel.work_remaining
        self.setup_remaining[slot] = kernel.setup_remaining
        self.rate[slot] = kernel.rate
        self.share[slot] = kernel.share
        self.rate_rev[slot] = kernel.rate_rev
        self.intra_share[slot] = 0.0
        self.speedup[slot] = 0.0
        self.coloc[slot] = 0.0
        self._speedup_share[slot] = np.nan
        self.armed_time[slot] = np.inf
        self.stamp[slot] = NO_STAMP
        self.occupied[slot] = True
        self.kernels[slot] = kernel
        self.slot_of[kernel.kernel_id] = slot
        kernel._bind(self, slot)

    def _clear_slot(self, slot: int, kernel: StageKernel) -> None:
        work = float(self.work_remaining[slot])
        setup = float(self.setup_remaining[slot])
        rate = float(self.rate[slot])
        share = float(self.share[slot])
        rev = int(self.rate_rev[slot])
        kernel._unbind()
        kernel.work_remaining = work
        kernel.setup_remaining = setup
        kernel.rate = rate
        kernel.share = share
        kernel.rate_rev = rev
        self.occupied[slot] = False
        self.kernels[slot] = None
        del self.slot_of[kernel.kernel_id]
        self.work_remaining[slot] = 0.0
        self.setup_remaining[slot] = 0.0
        self.rate[slot] = 0.0
        self.share[slot] = 0.0
        self.rate_rev[slot] = 0
        self.intra_share[slot] = 0.0
        self.speedup[slot] = 0.0
        self.coloc[slot] = 0.0
        self._speedup_share[slot] = np.nan
        self.armed_time[slot] = np.inf
        self.stamp[slot] = NO_STAMP

    # ------------------------------------------------------------------
    # Progress integration
    # ------------------------------------------------------------------
    def advance(self, elapsed: float) -> Tuple[float, bool]:
        """Whole-array ``StageKernel.advance``: burn setup, then work.

        Returns ``(work_consumed, busy)`` where ``busy`` mirrors the scalar
        device's "summed resident rate > 0" test (exact for non-negative
        rates).  Empty slots hold zeros throughout, so no masking is
        needed; slots the scalar code would leave untouched (no remaining
        elapsed time, or zero rate) are left bit-for-bit untouched here
        too.
        """
        eps = StageKernel.WORK_EPS
        setup = self.setup_remaining
        consumed_setup = np.minimum(setup, elapsed)
        setup = setup - consumed_setup
        setup[setup < eps] = 0.0
        self.setup_remaining = setup
        remaining = elapsed - consumed_setup
        rate = self.rate
        active = (remaining > 0.0) & (rate > 0.0)
        work = self.work_remaining
        delta = remaining * rate
        consumed_work = np.minimum(delta, work)
        new_work = work - delta
        new_work = np.where(new_work < eps, 0.0, new_work)
        self.work_remaining = np.where(active, new_work, work)
        # total_work_done is an aggregate statistic, not a trace input, so
        # pairwise np.sum is fine here.
        work_done = float(np.sum(np.where(active, consumed_work, 0.0)))
        return work_done, bool(np.any(rate > 0.0))

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(
        self,
        total_sms: float,
        aggregate_cap: float,
        params: AllocationParams,
        want_dicts: bool,
    ) -> Tuple[AllocationResult, "np.ndarray"]:
        """One allocation pass over the table; the vectorised
        ``compute_allocation``.

        Returns the :class:`AllocationResult` (per-kernel dicts populated
        only when ``want_dicts``, i.e. when a trace needs them) and the
        boolean mask of slots whose published rate changed.  Water-fills
        run through the *scalar* :func:`intra_context_shares` — only for
        contexts whose residency moved — so the per-context split is the
        same code, not a re-implementation; everything downstream is
        whole-array.
        """
        resynced = self.sync()
        for ci in resynced:
            context = self.contexts[ci]
            kernels = context.resident_kernels()
            count = len(kernels)
            self._n_resident[ci] = count
            if count == 0:
                self._granted[ci] = 0.0
                continue
            if self._shares_cache is not None:
                shares = self._shares_cache.shares(kernels, context.nominal_sms)
            else:
                shares = intra_context_shares(kernels, context.nominal_sms)
            self._granted[ci] = sum(shares.values())
            colocation = 1.0 / (1.0 + params.beta * (count - 1))
            for kernel in kernels:
                slot = self.slot_of[kernel.kernel_id]
                self.intra_share[slot] = shares.get(kernel.kernel_id, 0.0)
                self.coloc[slot] = colocation

        # Left-to-right over non-empty contexts, like the scalar pass.
        granted_total = 0.0
        for ci in range(len(self.contexts)):
            if self._n_resident[ci] > 0:
                granted_total += self._granted[ci]

        result = AllocationResult()
        if granted_total <= 0.0:
            return result, self._no_change

        result.pressure = granted_total / total_sms
        result.device_scale = min(1.0, total_sms / granted_total)
        contention = 1.0
        if result.pressure > 1.0:
            contention = 1.0 / (1.0 + params.alpha * (result.pressure - 1.0))

        share_new = self.intra_share * result.device_scale
        stale = self.occupied & (share_new != self._speedup_share)
        if stale.any():
            self._refresh_speedups(share_new, stale)

        base = self.speedup * self.coloc
        # Empty slots contribute +0.0, which is exact for the non-negative
        # partial sums, so the cumulative sum equals the scalar loop that
        # skips them.
        aggregate = float(np.cumsum(base)[-1])
        ceiling_scale = (
            min(1.0, aggregate_cap / aggregate) if aggregate > 0 else 1.0
        )
        overall = ceiling_scale * contention
        if overall < 1.0:
            rate_new = base * overall
            aggregate *= overall
        else:
            rate_new = base
        result.aggregate_rate = aggregate

        changed = self.occupied & (rate_new != self.rate)
        self.rate_rev[changed] += 1
        self.rate = rate_new
        self.share = share_new

        if want_dicts:
            for slot in np.nonzero(self.occupied)[0].tolist():
                kernel_id = self.kernels[slot].kernel_id
                result.shares[kernel_id] = float(share_new[slot])
                result.rates[kernel_id] = float(rate_new[slot])
        return result, changed

    def _refresh_speedups(
        self, share_new: "np.ndarray", stale: "np.ndarray"
    ) -> None:
        """Re-evaluate speedup curves where the effective share moved.

        Slots sharing one curve object (identical tasks are common) are
        evaluated in a single closed-form array pass; anything else falls
        back to the scalar ``curve.speedup`` per slot.  Both produce the
        bits the scalar allocator would.
        """
        groups: Dict[int, List[int]] = {}
        for slot in np.nonzero(stale)[0].tolist():
            # repro: lint-ok[D003] grouping key lives only for this call; the kernels list holds every curve alive
            groups.setdefault(id(self.kernels[slot].curve), []).append(slot)
        for slots in groups.values():
            curve = self.kernels[slots[0]].curve
            if len(slots) == 1 or not self._can_vectorise(curve):
                for slot in slots:
                    self.speedup[slot] = curve.speedup(float(share_new[slot]))
            else:
                index = np.array(slots, dtype=np.intp)
                self.speedup[index] = _composite_speedup_array(
                    curve, share_new[index]
                )
        self._speedup_share[stale] = share_new[stale]

    def _can_vectorise(self, curve) -> bool:
        # repro: lint-ok[D003] curves are owned by the task set's stage specs for the whole run, so ids are stable here
        key = id(curve)
        cached = self._vectorisable.get(key)
        if cached is None:
            cached = isinstance(curve, CompositeWorkload) and all(
                isinstance(segment, WidthLimitedCurve)
                and isinstance(segment.inner, SaturatingCurve)
                for _, segment in curve.segments
            )
            self._vectorisable[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Completion anchoring
    # ------------------------------------------------------------------
    def completion_times(self) -> "np.ndarray":
        """Element-wise ``StageKernel.time_to_completion`` (branch-exact)."""
        eps = StageKernel.WORK_EPS
        work = self.work_remaining
        setup = self.setup_remaining
        rate = self.rate
        complete = (setup <= eps) & (work <= eps)
        with np.errstate(divide="ignore", invalid="ignore"):
            running = setup + work / rate
        stalled = np.where(work > _STALL_WORK_EPS, np.inf, setup)
        return np.where(
            complete, 0.0, np.where(rate > 0.0, running, stalled)
        )

    def rearm_changed(self, now: float, engine, changed: "np.ndarray") -> None:
        """Re-anchor completion times for slots whose rate moved.

        Burns exactly the order stamps the incremental mode's per-kernel
        ``schedule_at`` calls would consume — one per finitely-armed
        changed slot, in slot order — via
        :meth:`~repro.sim.engine.SimulationEngine.allocate_seqs`, so every
        later event's FIFO tie-break position matches across modes.
        Unchanged slots keep their anchored times bit-for-bit.
        """
        when = now + self.completion_times()
        when = np.maximum(when, now)
        finite = changed & (when != np.inf)
        count = int(np.count_nonzero(finite))
        if count:
            first = engine.allocate_seqs(count)
            ranks = np.cumsum(finite) - 1
            self.stamp[finite] = first + ranks[finite]
        infinite = changed & ~finite
        if infinite.any():
            self.stamp[infinite] = NO_STAMP
        self.armed_time[changed] = when[changed]

    def arm_slot(self, slot: int, when: float, stamp: int) -> None:
        """Anchor one slot's completion (the residual re-arm path)."""
        self.armed_time[slot] = when
        self.stamp[slot] = stamp

    def clear_arm(self, slot: int) -> None:
        """Drop one slot's completion anchor (fired or disarmed)."""
        self.armed_time[slot] = np.inf
        self.stamp[slot] = NO_STAMP

    def disarm(self, kernel_id: int) -> Optional[int]:
        """Drop the anchor of a kernel if it holds a slot; return the slot."""
        slot = self.slot_of.get(kernel_id)
        if slot is not None:
            self.clear_arm(slot)
        return slot

    def best_armed(self) -> Optional[Tuple[int, float, int]]:
        """The lexicographically earliest ``(time, stamp)`` anchor.

        This is exactly the completion event the incremental mode's heap
        would pop next (stamps are unique, so ties on time resolve
        identically).  ``None`` when nothing is armed.
        """
        armed = self.armed_time
        earliest = armed.min()
        if earliest == np.inf:
            return None
        candidates = armed == earliest
        slot = int(np.where(candidates, self.stamp, NO_STAMP).argmin())
        return slot, float(armed[slot]), int(self.stamp[slot])

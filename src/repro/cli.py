"""Command-line interface: regenerate the paper's figures from a terminal.

Usage::

    python -m repro fig1                 # per-operation speedup table
    python -m repro fig3 [--fast]        # scenario 1 (2 contexts) sweep
    python -m repro fig4 [--fast]        # scenario 2 (3 contexts) sweep
    python -m repro all  [--fast]        # everything
    python -m repro fig3 --csv out.csv   # also export the sweep as CSV

    # the parallel sweep harness (repro.exp): sharded, cached, replicated
    python -m repro sweep --scenario 1 --workers 4
    python -m repro sweep --scenario 2 --seeds 5 --jitter-cv 0.1
    python -m repro sweep --cache-dir .sweep-cache --out grid.json

``--fast`` shrinks the task grid and simulation horizon for a quick look;
the benchmark harness under ``benchmarks/`` runs the full-fidelity version.
``sweep`` runs the same grids through :func:`repro.exp.runner.run_grid`:
``--workers N`` shards points over N processes, ``--cache-dir`` skips
already-computed points, and ``--seeds K`` replicates every point over K
seeds and reports mean +/- 95% CI (pair it with ``--jitter-cv`` — with
zero jitter the replicas are identical by design).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.pivot import pivot_table
from repro.analysis.report import (
    ascii_chart,
    render_aggregate_table,
    render_fig1_table,
    render_sweep_table,
    sweep_to_csv,
)
from repro.dnn.resnet import build_resnet18
from repro.exp.runner import run_grid
from repro.speedup.measure import measure_network_speedup, measure_op_speedups
from repro.workloads.scenarios import (
    SCENARIO_1,
    SCENARIO_2,
    Scenario,
    run_scenario_sweep,
    scenario_grid,
)

#: Task grid of the full sweeps (the paper sweeps to ~30 tasks).
FULL_TASK_COUNTS = tuple(range(2, 31, 2)) + (23, 25, 27, 29)
FAST_TASK_COUNTS = (4, 8, 12, 16, 20, 24, 28)


def _fig1(args: argparse.Namespace) -> None:
    graph = build_resnet18()
    op_curves = measure_op_speedups(graph)
    net_curve = measure_network_speedup(graph)
    print("Fig. 1 — speedup gain vs. SMs (isolation, simulated RTX 2080 Ti)")
    print(render_fig1_table(op_curves, net_curve))
    chart = ascii_chart(
        {str(t): [(float(s), v) for s, v in pts] for t, pts in op_curves.items()},
        title="speedup vs SMs",
    )
    print()
    print(chart)


def _scenario(
    scenario: Scenario, figure: str, args: argparse.Namespace
) -> None:
    counts = FAST_TASK_COUNTS if args.fast else FULL_TASK_COUNTS
    duration = 2.5 if args.fast else 6.0
    warmup = 1.0 if args.fast else 1.5
    sweep = run_scenario_sweep(
        scenario, sorted(counts), duration=duration, warmup=warmup
    )
    print(
        f"{figure}a — total FPS, {scenario.name} "
        f"({scenario.num_contexts} contexts)"
    )
    print(render_sweep_table(sweep, metric="total_fps"))
    print()
    print(f"{figure}b — deadline miss rate, {scenario.name}")
    print(render_sweep_table(sweep, metric="dmr"))
    print()
    print("pivot points (largest task count with zero misses):")
    for variant, pivot in pivot_table(sweep).items():
        print(f"  {variant}: {pivot}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep_to_csv(sweep))
        print(f"CSV written to {args.csv}")


def _sweep(args: argparse.Namespace) -> None:
    scenario = SCENARIO_1 if args.scenario == 1 else SCENARIO_2
    counts = FAST_TASK_COUNTS if args.fast else FULL_TASK_COUNTS
    duration = 2.5 if args.fast else 6.0
    warmup = 1.0 if args.fast else 1.5
    grid = scenario_grid(
        scenario,
        sorted(counts),
        duration=duration,
        warmup=warmup,
        seeds=tuple(range(args.seeds)),
        work_jitter_cv=args.jitter_cv,
    )
    result = run_grid(grid, workers=args.workers, cache_dir=args.cache_dir)
    print(
        f"sweep {scenario.name} ({scenario.num_contexts} contexts): "
        f"{len(result.results)} points in {result.elapsed:.2f}s "
        f"({result.cache_hits} cached, {result.cache_misses} computed, "
        f"workers={args.workers})"
    )
    if args.seeds > 1:
        aggregates = result.aggregate()
        print(
            render_aggregate_table(
                aggregates,
                "total_fps",
                title=f"total FPS, mean±ci95 over {args.seeds} seeds",
            )
        )
        print()
        print(
            render_aggregate_table(
                aggregates,
                "dmr",
                title=f"deadline miss rate, mean±ci95 over {args.seeds} seeds",
            )
        )
    else:
        sweep = result.sweep()
        print(render_sweep_table(sweep, "total_fps", title="total FPS"))
        print()
        print(render_sweep_table(sweep, "dmr", title="deadline miss rate"))
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep_to_csv(result.sweep()))
        print(f"CSV written to {args.csv}")
    if args.out:
        from repro.analysis.persistence import save_grid

        save_grid(result, args.out)
        print(f"grid JSON written to {args.out}")


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _nonnegative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {number}")
    return number


def _jitter_cv(value: str) -> float:
    number = float(value)
    if not 0.0 <= number < 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1), got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="sgprs",
        description="Regenerate the SGPRS paper's figures on the simulator.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--fast",
        action="store_true",
        help="smaller grid and shorter horizon for a quick look",
    )
    common.add_argument(
        "--csv",
        default=None,
        help="also write the sweep data to this CSV file",
    )
    commands = parser.add_subparsers(
        dest="figure", required=True, metavar="command"
    )
    for name, help_text in (
        ("fig1", "per-operation speedup table"),
        ("fig3", "scenario 1 (2 contexts) sweep"),
        ("fig4", "scenario 2 (3 contexts) sweep"),
        ("all", "every figure"),
    ):
        commands.add_parser(name, parents=[common], help=help_text)
    sweep = commands.add_parser(
        "sweep",
        parents=[common],
        help="parallel sweep harness: sharded, cached, seed-replicated",
    )
    sweep.add_argument(
        "--scenario",
        type=int,
        choices=(1, 2),
        default=1,
        help="context-pool scenario (1: two contexts, 2: three)",
    )
    sweep.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        help="worker processes (0: serial in-process)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result cache; already-computed points are skipped",
    )
    sweep.add_argument(
        "--seeds",
        type=_positive_int,
        default=1,
        help="replication seeds per point (>1 reports mean±ci95)",
    )
    sweep.add_argument(
        "--jitter-cv",
        type=_jitter_cv,
        default=0.0,
        help="per-stage execution-time jitter CV (enables seed variation)",
    )
    sweep.add_argument(
        "--out",
        default=None,
        help="write the full per-seed grid result to this JSON file",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.figure in ("fig1", "all"):
        _fig1(args)
    if args.figure in ("fig3", "all"):
        _scenario(SCENARIO_1, "Fig. 3", args)
    if args.figure in ("fig4", "all"):
        _scenario(SCENARIO_2, "Fig. 4", args)
    if args.figure == "sweep":
        _sweep(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

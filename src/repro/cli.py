"""Command-line interface: regenerate the paper's figures from a terminal.

Usage::

    python -m repro fig1                 # per-operation speedup table
    python -m repro fig3 [--fast]        # scenario 1 (2 contexts) sweep
    python -m repro fig4 [--fast]        # scenario 2 (3 contexts) sweep
    python -m repro all  [--fast]        # everything
    python -m repro fig3 --csv out.csv   # also export the sweep as CSV

``--fast`` shrinks the task grid and simulation horizon for a quick look;
the benchmark harness under ``benchmarks/`` runs the full-fidelity version.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.pivot import pivot_table
from repro.analysis.report import (
    ascii_chart,
    render_fig1_table,
    render_sweep_table,
    sweep_to_csv,
)
from repro.dnn.resnet import build_resnet18
from repro.speedup.measure import measure_network_speedup, measure_op_speedups
from repro.workloads.scenarios import (
    SCENARIO_1,
    SCENARIO_2,
    Scenario,
    run_scenario_sweep,
)

#: Task grid of the full sweeps (the paper sweeps to ~30 tasks).
FULL_TASK_COUNTS = tuple(range(2, 31, 2)) + (23, 25, 27, 29)
FAST_TASK_COUNTS = (4, 8, 12, 16, 20, 24, 28)


def _fig1(args: argparse.Namespace) -> None:
    graph = build_resnet18()
    op_curves = measure_op_speedups(graph)
    net_curve = measure_network_speedup(graph)
    print("Fig. 1 — speedup gain vs. SMs (isolation, simulated RTX 2080 Ti)")
    print(render_fig1_table(op_curves, net_curve))
    chart = ascii_chart(
        {str(t): [(float(s), v) for s, v in pts] for t, pts in op_curves.items()},
        title="speedup vs SMs",
    )
    print()
    print(chart)


def _scenario(
    scenario: Scenario, figure: str, args: argparse.Namespace
) -> None:
    counts = FAST_TASK_COUNTS if args.fast else FULL_TASK_COUNTS
    duration = 2.5 if args.fast else 6.0
    warmup = 1.0 if args.fast else 1.5
    sweep = run_scenario_sweep(
        scenario, sorted(counts), duration=duration, warmup=warmup
    )
    print(
        f"{figure}a — total FPS, {scenario.name} "
        f"({scenario.num_contexts} contexts)"
    )
    print(render_sweep_table(sweep, metric="total_fps"))
    print()
    print(f"{figure}b — deadline miss rate, {scenario.name}")
    print(render_sweep_table(sweep, metric="dmr"))
    print()
    print("pivot points (largest task count with zero misses):")
    for variant, pivot in pivot_table(sweep).items():
        print(f"  {variant}: {pivot}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep_to_csv(sweep))
        print(f"CSV written to {args.csv}")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="sgprs",
        description="Regenerate the SGPRS paper's figures on the simulator.",
    )
    parser.add_argument(
        "figure",
        choices=["fig1", "fig3", "fig4", "all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smaller grid and shorter horizon for a quick look",
    )
    parser.add_argument(
        "--csv",
        default=None,
        help="also write the sweep data to this CSV file",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.figure in ("fig1", "all"):
        _fig1(args)
    if args.figure in ("fig3", "all"):
        _scenario(SCENARIO_1, "Fig. 3", args)
    if args.figure in ("fig4", "all"):
        _scenario(SCENARIO_2, "Fig. 4", args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

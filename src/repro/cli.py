"""Command-line interface: regenerate the paper's figures from a terminal.

Usage::

    python -m repro fig1                 # per-operation speedup table
    python -m repro fig3 [--fast]        # scenario 1 (2 contexts) sweep
    python -m repro fig4 [--fast]        # scenario 2 (3 contexts) sweep
    python -m repro all  [--fast]        # everything
    python -m repro fig3 --csv out.csv   # also export the sweep as CSV

    # the parallel sweep harness (repro.exp): sharded, cached, replicated
    python -m repro sweep --scenario 1 --workers 4
    python -m repro sweep --scenario 2 --seeds 5 --jitter-cv 0.1
    python -m repro sweep --cache-dir .sweep-cache --out grid.json

    # heterogeneous (synthesized) workloads, by scenario name
    python -m repro sweep --list-scenarios
    python -m repro sweep --scenario mixed_fleet --tasks 6,10
    python -m repro sweep --scenario util_ramp --utilizations 1.0,1.5,2.0
    python -m repro synth --scenario surveillance_burst --tasks 8

    # open-system arrivals and admission control (repro.workloads.arrivals)
    python -m repro sweep --list-arrivals
    python -m repro sweep --scenario 1 --arrival mmpp:burst=6 --admission queue:depth=2
    python -m repro synth --scenario mixed_fleet --arrival poisson

    # distributed execution (repro.exp.dist): shard / claim / merge
    python -m repro sweep --scenario 1 --shard 2/8 --out shard2.json
    python -m repro sweep --scenario 1 --claim --heartbeat 30
    python -m repro sweep --scenario 1 --claim --record-traces
    python -m repro sweep --resume RUN_ID
    python -m repro merge .repro-runs/RUN_ID --out grid.json

    # daemon fleets (repro.exp.daemon): submit work, long-lived workers
    python -m repro sweep --scenario 1 --submit --runs-root /srv/runs
    python -m repro worker --runs-root /srv/runs --poll 5 --max-idle 24

``--fast`` shrinks the task grid and simulation horizon for a quick look;
the benchmark harness under ``benchmarks/`` runs the full-fidelity version.
``sweep`` runs the same grids through :func:`repro.exp.runner.run_grid`:
``--workers N`` shards points over N processes, ``--cache-dir`` skips
already-computed points, and ``--seeds K`` replicates every point over K
seeds and reports mean +/- 95% CI (pair it with ``--jitter-cv`` — with
zero jitter the replicas are identical by design).  ``--scenario`` takes a
paper scenario (``1``/``2``) or any name from ``--list-scenarios``; synth
scenarios accept a ``--utilizations`` axis plus ``--period-class`` /
``--zoo-mix`` / ``--deadline-mode`` overrides.  ``synth`` synthesizes one
taskset and prints its composition and analytic capacity estimates
without running a sweep.

Distributed sweeps (see :mod:`repro.exp.dist` for the protocol):
``--shard I/N`` statically evaluates round-robin shard I of N — run the N
shards anywhere, collect their ``--out`` JSONs, and ``merge`` them.
``--claim`` dynamically partitions a *run directory* shared by any number
of concurrent workers (``--run-dir``, defaulting to
``<--runs-root>/<run id>``): each pending point is atomically claimed
before being computed, a crashed worker's claims go stale after
``--heartbeat`` seconds and are re-claimed, and every completed point is
checkpointed so ``--resume RUN`` (a run id or directory) recomputes only
what is missing.  ``--record-traces`` additionally ships every computed
point's columnar execution trace into the run directory's ``traces/``
subdirectory (:mod:`repro.sim.trace_io` format; load them back with
:func:`repro.analysis.persistence.load_run_traces`), and
``--aggregate-csv`` exports the seed-aggregated cells — tail latency and
queue depth included — as CSV.  ``merge`` assembles run directories
and/or grid JSONs
into one canonical grid, refusing mixed schema versions, mixed
calibration fingerprints and conflicting duplicates.

Daemon fleets (see :mod:`repro.exp.daemon`): ``sweep --submit``
initialises a run directory under ``--runs-root`` and exits without
computing anything; ``worker`` is the long-lived counterpart that polls
the runs root (``--poll``), drains every pending run it discovers
through the claim protocol with background heartbeat refresh, picks up
hot-added runs, and exits cleanly on SIGTERM, after ``--max-idle``
empty poll cycles, or after one pass with ``--once``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.pivot import pivot_table, utilization_pivot_table
from repro.analysis.report import (
    ascii_chart,
    render_aggregate_table,
    render_fig1_table,
    render_sweep_table,
    render_utilization_table,
    sweep_to_csv,
)
from repro.core.context_pool import ContextPoolConfig
from repro.dnn.resnet import build_resnet18
from repro.exp.grid import registered_variants
from repro.exp.runner import run_grid
from repro.exp.worker import run_point
from repro.gpu.spec import RTX_2080_TI
from repro.speedup.measure import measure_network_speedup, measure_op_speedups
from repro.workloads.scenarios import (
    OVERSUBSCRIPTION_LEVELS,
    PAPER_SCENARIOS,
    SCENARIO_1,
    SCENARIO_2,
    Scenario,
    list_all_scenarios,
    run_scenario_sweep,
    scenario_grid,
)

#: Task grid of the full sweeps (the paper sweeps to ~30 tasks).
FULL_TASK_COUNTS = tuple(range(2, 31, 2)) + (23, 25, 27, 29)
FAST_TASK_COUNTS = (4, 8, 12, 16, 20, 24, 28)

#: Default task grids of synthesized-workload sweeps (the mix, not the
#: count, is the interesting axis there).
SYNTH_FULL_TASK_COUNTS = (4, 8, 12, 16)
SYNTH_FAST_TASK_COUNTS = (4, 8, 12)


def _fig1(args: argparse.Namespace) -> None:
    graph = build_resnet18()
    op_curves = measure_op_speedups(graph)
    net_curve = measure_network_speedup(graph)
    print("Fig. 1 — speedup gain vs. SMs (isolation, simulated RTX 2080 Ti)")
    print(render_fig1_table(op_curves, net_curve))
    chart = ascii_chart(
        {str(t): [(float(s), v) for s, v in pts] for t, pts in op_curves.items()},
        title="speedup vs SMs",
    )
    print()
    print(chart)


def _scenario(
    scenario: Scenario, figure: str, args: argparse.Namespace
) -> None:
    counts = FAST_TASK_COUNTS if args.fast else FULL_TASK_COUNTS
    duration = 2.5 if args.fast else 6.0
    warmup = 1.0 if args.fast else 1.5
    sweep = run_scenario_sweep(
        scenario, sorted(counts), duration=duration, warmup=warmup
    )
    print(
        f"{figure}a — total FPS, {scenario.name} "
        f"({scenario.num_contexts} contexts)"
    )
    print(render_sweep_table(sweep, metric="total_fps"))
    print()
    print(f"{figure}b — deadline miss rate, {scenario.name}")
    print(render_sweep_table(sweep, metric="dmr"))
    print()
    print("pivot points (largest task count with zero misses):")
    for variant, pivot in pivot_table(sweep).items():
        print(f"  {variant}: {pivot}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep_to_csv(sweep))
        print(f"CSV written to {args.csv}")


def _print_scenarios() -> None:
    print("registered scenarios:")
    for name, description in list_all_scenarios():
        print(f"  {name:<20} {description}")


def _print_arrivals() -> None:
    from repro.core.admission import list_admission_policies
    from repro.workloads.arrivals import list_arrivals

    print("registered arrival processes (--arrival SPEC, repeatable):")
    for name, description in list_arrivals():
        print(f"  {name:<12} {description}")
    print("registered admission policies (--admission SPEC):")
    for name, description in list_admission_policies():
        print(f"  {name:<12} {description}")


def _print_variants() -> None:
    print("built-in variants:")
    print("  naive                single-stage baseline, 1.0x partitions")
    for level in OVERSUBSCRIPTION_LEVELS:
        print(f"  sgprs_{level:<14g} SGPRS at {level:g}x over-subscription")
    print("  sgprs_<os>           any other over-subscription level")
    custom = registered_variants()
    if custom:
        print("registered custom variants:")
        for name in custom:
            print(f"  {name}")


def _sweep(args: argparse.Namespace) -> None:
    if args.list_scenarios:
        _print_scenarios()
        return
    if args.list_variants:
        _print_variants()
        return
    if args.list_arrivals:
        _print_arrivals()
        return
    if args.resume:
        _sweep_resume(args)
        return
    if args.scenario in PAPER_SCENARIOS:
        _sweep_paper(PAPER_SCENARIOS[args.scenario], args)
    else:
        _sweep_synth(args)


def _default_run_dir(args: argparse.Namespace, grid) -> Optional[str]:
    """The shared run directory this invocation should use, if any."""
    if args.run_dir:
        return args.run_dir
    if args.claim or args.submit:
        from repro.exp.dist import run_id_for

        return str(Path(args.runs_root) / run_id_for(grid))
    return None


def _run_spec(grid, args: argparse.Namespace, run_dir: Optional[str] = None):
    """Execute a grid honouring the cache/shard/claim/run-dir flags."""
    if run_dir is None:
        run_dir = _default_run_dir(args, grid)
    cache_dir = args.cache_dir
    claim_config = None
    manifest = None
    if run_dir is not None:
        from repro.exp.dist import ClaimConfig, default_owner, init_run

        if args.cache_dir:
            # silently preferring one cache over the other would either
            # ignore a warm cache or split checkpoints across two
            # directories — refuse instead
            raise SystemExit(
                "--cache-dir conflicts with --run-dir/--claim/--resume: "
                "a run directory keeps its checkpoints in its own cache/ "
                "subdirectory"
            )
        try:
            manifest = init_run(run_dir, grid)
        except ValueError as error:
            raise SystemExit(str(error)) from None
        if args.submit:
            # submit-only: the run directory now advertises the grid;
            # a worker fleet (python -m repro worker) does the computing.
            # Workers discover runs one level under their root, so the
            # hint must name the directory that actually contains this
            # run — its parent, not --runs-root, when --run-dir was used.
            root_hint = (
                Path(run_dir).parent if args.run_dir else args.runs_root
            )
            print(
                f"submitted run {manifest.run_id} at {run_dir} "
                f"({len(grid)} points; drain with: python -m repro worker "
                f"--runs-root {root_hint})"
            )
            return None
        cache_dir = Path(run_dir) / "cache"
        if args.claim:
            claim_config = ClaimConfig(
                run_dir=run_dir,
                owner=args.owner or default_owner(),
                ttl=args.heartbeat,
                skew=args.skew,
            )
    point_fn = run_point
    if getattr(args, "record_traces", False):
        if run_dir is None:
            raise SystemExit(
                "--record-traces needs a run directory to ship traces "
                "into; combine it with --run-dir, --claim or --resume"
            )
        import functools

        point_fn = functools.partial(run_point, trace_store=run_dir)
    result = run_grid(
        grid,
        workers=args.workers,
        cache_dir=cache_dir,
        shard=args.shard,
        claim=claim_config,
        point_fn=point_fn,
    )
    if manifest is not None:
        print(
            f"run {manifest.run_id} at {run_dir} "
            f"(resume with: python -m repro sweep --resume {run_dir})"
        )
    return result


def _run_summary(result, args: argparse.Namespace) -> str:
    """The `N points in T s (...)` fragment of the sweep banner."""
    parts = [
        f"{len(result.results)} points in {result.elapsed:.2f}s",
        f"({result.cache_hits} cached, {result.cache_misses} computed",
    ]
    summary = f"{parts[0]} {parts[1]}"
    if result.skipped:
        summary += f", {result.skipped} claimed elsewhere"
    return summary + f", workers={args.workers})"


def _sweep_resume(args: argparse.Namespace) -> None:
    """Re-run the pending points of an existing run directory."""
    from repro.exp.dist import MANIFEST_NAME, load_manifest

    run_dir = Path(args.resume)
    if not (run_dir / MANIFEST_NAME).exists():
        run_dir = Path(args.runs_root) / args.resume
    try:
        manifest = load_manifest(run_dir)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    result = _run_spec(manifest.spec, args, run_dir=str(run_dir))
    if result is None:  # --resume --submit: the run dir already exists
        return
    print(
        f"resumed sweep {manifest.spec.scenario}: "
        f"{_run_summary(result, args)}"
    )
    _print_count_tables(result, len(manifest.spec.seeds))
    _export(result, args)


def _merge(args: argparse.Namespace) -> None:
    """Merge run directories and/or grid JSONs into one canonical grid."""
    import json

    from repro.analysis.persistence import merge_grid_dicts, save_grid
    from repro.analysis.report import sweep_to_csv
    from repro.exp.dist import MANIFEST_NAME, run_payload

    def load_document(file):
        try:
            with open(file) as handle:
                return json.load(handle)
        except ValueError as error:
            raise SystemExit(f"{file}: not valid JSON ({error})") from None

    payloads = []
    sources = []
    for raw in args.inputs:
        path = Path(raw)
        if path.is_dir() and (path / MANIFEST_NAME).exists():
            # always read run directories permissively: coverage is
            # validated on the *combined* inputs below, so a partial run
            # dir plus the shard JSONs that complete it merges cleanly
            try:
                payloads.append(run_payload(path, allow_partial=True))
            except ValueError as error:
                raise SystemExit(str(error)) from None
            sources.append(str(path))
        elif path.is_dir():
            files = sorted(path.glob("*.json"))
            if not files:
                raise SystemExit(f"{path}: no grid JSON documents found")
            for file in files:
                payloads.append(load_document(file))
                sources.append(str(file))
        elif path.is_file():
            payloads.append(load_document(path))
            sources.append(str(path))
        else:
            raise SystemExit(f"{path}: no such file or directory")
    try:
        merged = merge_grid_dicts(payloads, allow_partial=args.allow_partial)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    total = len(merged.spec)
    print(
        f"merged {len(merged.results)} of {total} grid points from "
        f"{len(sources)} document(s)"
    )
    if len(merged.results) < total:
        print(f"({total - len(merged.results)} points still missing)")
    if args.out:
        save_grid(merged, args.out)
        print(f"grid JSON written to {args.out}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep_to_csv(merged.sweep()))
        print(f"CSV written to {args.csv}")


def _sweep_paper(scenario: Scenario, args: argparse.Namespace) -> None:
    synth_only = {
        "--utilizations": args.utilizations,
        "--period-class": args.period_class,
        "--zoo-mix": args.zoo_mix,
        "--deadline-mode": args.deadline_mode,
    }
    offending = [flag for flag, value in synth_only.items() if value]
    if offending:
        raise SystemExit(
            f"{', '.join(offending)} require a synth scenario "
            f"(see --list-scenarios), not {scenario.name!r}"
        )
    counts = args.tasks or (FAST_TASK_COUNTS if args.fast else FULL_TASK_COUNTS)
    duration = args.duration or (2.5 if args.fast else 6.0)
    warmup = args.warmup or (1.0 if args.fast else 1.5)
    grid = scenario_grid(
        scenario,
        sorted(counts),
        duration=duration,
        warmup=warmup,
        seeds=tuple(range(args.seeds)),
        work_jitter_cv=args.jitter_cv,
        arrivals=tuple(args.arrival or ("periodic",)),
        admission=args.admission,
    )
    result = _run_spec(grid, args)
    if result is None:  # --submit: initialised only, nothing computed
        return
    print(
        f"sweep {scenario.name} ({scenario.num_contexts} contexts): "
        f"{_run_summary(result, args)}"
    )
    _print_count_tables(result, args.seeds)
    _export(result, args)


def _sweep_synth(args: argparse.Namespace) -> None:
    from repro.workloads.synth.scenarios import get_synth_scenario
    from repro.workloads.synth.sweep import synth_grid

    scenario = get_synth_scenario(args.scenario)  # KeyError lists the names
    counts = args.tasks or (
        SYNTH_FAST_TASK_COUNTS if args.fast else SYNTH_FULL_TASK_COUNTS
    )
    duration = args.duration or (1.5 if args.fast else 4.0)
    warmup = args.warmup or (0.5 if args.fast else 1.0)
    grid = synth_grid(
        scenario.name,
        utilizations=args.utilizations or (),
        task_counts=tuple(sorted(counts)),
        duration=duration,
        warmup=warmup,
        seeds=tuple(range(args.seeds)),
        work_jitter_cv=args.jitter_cv,
        period_class=args.period_class,
        zoo_mix=args.zoo_mix,
        deadline_mode=args.deadline_mode,
        arrivals=tuple(args.arrival or ("periodic",)),
        admission=args.admission,
    )
    result = _run_spec(grid, args)
    if result is None:  # --submit: initialised only, nothing computed
        return
    print(
        f"sweep {scenario.name} ({scenario.num_contexts} contexts, "
        f"mix={args.zoo_mix or scenario.zoo_mix}): "
        f"{_run_summary(result, args)}"
    )
    if args.utilizations and len(args.utilizations) > 1:
        aggregates = result.aggregate()
        print(render_utilization_table(aggregates, "total_fps", title="total FPS"))
        print()
        print(
            render_utilization_table(
                aggregates, "dmr", title="deadline miss rate"
            )
        )
        print()
        print("pivot utilization (largest target with zero misses):")
        for variant, pivot in utilization_pivot_table(result.results).items():
            print(f"  {variant}: {pivot}")
    else:
        _print_count_tables(result, args.seeds)
    _export(result, args)


def _print_count_tables(result, seeds: int) -> None:
    """The classic task-count-axis tables (seed means or mean±ci95).

    A multi-valued ``--arrival`` axis has no classic-sweep shape
    (``SweepPoint`` carries no arrival coordinate), so the tables are
    printed once per arrival slice instead of collapsing distinct cells.
    """
    from repro.exp.aggregate import aggregate_results, to_sweep

    if not result.results:
        print("(no points computed by this worker yet)")
        return
    slices: dict = {}
    for point_result in result.results:
        slices.setdefault(point_result.point.arrival, []).append(point_result)
    for arrival in sorted(slices):
        subset = slices[arrival]
        if len(slices) > 1:
            print(f"--- arrival: {arrival} ---")
        if seeds > 1:
            aggregates = aggregate_results(subset)
            print(
                render_aggregate_table(
                    aggregates,
                    "total_fps",
                    title=f"total FPS, mean±ci95 over {seeds} seeds",
                )
            )
            print()
            print(
                render_aggregate_table(
                    aggregates,
                    "dmr",
                    title=f"deadline miss rate, mean±ci95 over {seeds} seeds",
                )
            )
            if arrival != "periodic":
                # open-system slices also get the tail/queue aggregates
                # (closed-system output stays byte-stable)
                print()
                print(
                    render_aggregate_table(
                        aggregates,
                        "p99_response",
                        title="p99 response, mean±ci95 over seeds",
                    )
                )
                print()
                print(
                    render_aggregate_table(
                        aggregates,
                        "mean_queue_depth",
                        title="mean queue depth, mean±ci95 over seeds",
                    )
                )
        else:
            sweep = to_sweep(subset)
            print(render_sweep_table(sweep, "total_fps", title="total FPS"))
            print()
            print(render_sweep_table(sweep, "dmr", title="deadline miss rate"))
        _print_open_system_summary(subset)
        if len(slices) > 1:
            print()


def _print_open_system_summary(results) -> None:
    """Per-variant rejection/goodput/tail line for open-system slices.

    Silent on closed-system runs (periodic arrivals, nothing rejected)
    so the classic sweep output stays byte-stable.
    """
    if all(
        r.point.arrival == "periodic" and r.rejected == 0 for r in results
    ):
        return
    by_variant: dict = {}
    for point_result in results:
        by_variant.setdefault(point_result.point.variant, []).append(
            point_result
        )
    print()
    print("open-system metrics (mean over points):")
    for variant in sorted(by_variant):
        rows = by_variant[variant]
        rejection = sum(r.rejection_rate for r in rows) / len(rows)
        goodput = sum(r.goodput for r in rows) / len(rows)
        p99s = [r.p99_response for r in rows if r.p99_response is not None]
        tail = (
            f"p99 {max(p99s) * 1e3:.1f} ms (worst point)"
            if p99s
            else "p99 n/a"
        )
        print(
            f"  {variant:<12} reject {rejection * 100:5.2f}%  "
            f"goodput {goodput:8.1f} fps  {tail}"
        )


def _export(result, args: argparse.Namespace) -> None:
    if getattr(args, "aggregate_csv", None):
        from repro.analysis.report import aggregate_to_csv
        from repro.exp.aggregate import aggregate_results

        with open(args.aggregate_csv, "w") as handle:
            handle.write(aggregate_to_csv(aggregate_results(result.results)))
        print(f"aggregate CSV written to {args.aggregate_csv}")
    if args.csv:
        try:
            csv_text = sweep_to_csv(result.sweep())
        except ValueError as error:
            print(
                f"--csv skipped: {error} (use --out for the full "
                "multi-axis grid JSON)"
            )
        else:
            with open(args.csv, "w") as handle:
                handle.write(csv_text)
            print(f"CSV written to {args.csv}")
    if args.out:
        from repro.analysis.persistence import save_grid

        save_grid(result, args.out)
        print(f"grid JSON written to {args.out}")


def _worker(args: argparse.Namespace) -> None:
    """Run one long-lived daemon worker over a runs root."""
    from repro.exp.daemon import DaemonConfig, serve

    stats = serve(
        DaemonConfig(
            runs_root=args.runs_root,
            poll=args.poll,
            max_idle=args.max_idle,
            once=args.once,
            owner=args.owner,
            ttl=args.heartbeat,
            skew=args.skew,
            workers=args.workers,
        ),
        echo=print,
    )
    print(
        f"served {stats.runs_seen} run(s): {stats.points_computed} points "
        f"computed, {stats.points_skipped} left to peers "
        f"({stats.cycles} poll cycle(s), stopped by {stats.stopped_by})"
    )


def _lint(args: argparse.Namespace) -> int:
    """Run the invariant linter; exit 0 only on a clean tree."""
    from repro.devtools.lint import (
        ALL_RULES,
        render_json,
        render_text,
        run_lint,
    )

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    try:
        findings = run_lint(
            args.paths,
            ALL_RULES,
            select=args.select,
            ignore=args.ignore,
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_text
    sys.stdout.write(render(findings))
    return 1 if any(f.severity == "error" for f in findings) else 0


def _synth(args: argparse.Namespace) -> None:
    """Synthesize one taskset and print its composition + capacity math."""
    from repro.analysis.schedulability import (
        taskset_naive_utilization,
        taskset_sgprs_utilization,
    )
    from repro.workloads.synth.scenarios import get_synth_scenario
    from repro.workloads.synth.taskset import describe_taskset, synthesize_taskset

    scenario = get_synth_scenario(args.scenario)
    spec = scenario.spec(
        num_tasks=args.tasks,
        seed=args.seed,
        total_utilization=args.utilization,
        period_class=args.period_class,
        zoo_mix=args.zoo_mix,
        deadline_mode=args.deadline_mode,
    )
    pool = ContextPoolConfig.from_oversubscription(
        scenario.num_contexts, 1.0, RTX_2080_TI
    )
    tasks = synthesize_taskset(spec, nominal_sms=pool.sms_per_context)
    print(
        f"{scenario.name}: {spec.num_tasks} tasks, target utilization "
        f"{spec.total_utilization:g}, mix={spec.zoo_mix}, "
        f"periods={spec.period_class}, deadlines={spec.deadline_mode}, "
        f"seed={spec.seed}"
    )
    print()
    print(describe_taskset(tasks))
    print()
    naive_util = taskset_naive_utilization(
        tasks, scenario.num_contexts, pool.sms_per_context
    )
    sgprs_util = taskset_sgprs_utilization(tasks, RTX_2080_TI)
    print("analytic demand (fraction of capacity; >1 predicts misses):")
    print(f"  naive ({scenario.num_contexts} contexts): {naive_util:.3f}")
    print(f"  sgprs (saturation ceiling):  {sgprs_util:.3f}")
    from repro.workloads.arrivals import record_arrivals, resolve_arrival

    process = resolve_arrival(args.arrival)
    horizon = 4.0
    events = record_arrivals(process, tasks, horizon=horizon, seed=args.seed)
    nominal = sum(horizon / task.period for task in tasks)
    print()
    print(f"arrival process: {process.name} — {process.describe()}")
    print(
        f"  {len(events)} arrivals over {horizon:g}s "
        f"({nominal:.0f} under strictly periodic releases, "
        f"{len(events) / nominal:.2f}x nominal demand)"
        if nominal
        else f"  {len(events)} arrivals over {horizon:g}s"
    )


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _nonnegative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {number}")
    return number


def _positive_float(value: str) -> float:
    number = float(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {number}")
    return number


def _nonnegative_float(value: str) -> float:
    number = float(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {number}")
    return number


def _shard_spec(value: str) -> tuple:
    """A shard spec ``i/n`` (1-based), e.g. ``2/8``."""
    from repro.exp.dist import parse_shard

    try:
        return parse_shard(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _jitter_cv(value: str) -> float:
    number = float(value)
    if not 0.0 <= number < 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1), got {number}")
    return number


def _task_counts(value: str) -> tuple:
    """Comma-separated positive ints, e.g. ``4,8,12``."""
    try:
        counts = tuple(_positive_int(part) for part in value.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated positive ints, got {value!r}"
        ) from None
    return counts


def _utilizations(value: str) -> tuple:
    """Comma-separated positive floats, e.g. ``1.0,1.5,2.0``."""
    try:
        utils = tuple(float(part) for part in value.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated floats, got {value!r}"
        ) from None
    if any(u <= 0 for u in utils):
        raise argparse.ArgumentTypeError(f"utilizations must be > 0: {value!r}")
    return utils


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="sgprs",
        description="Regenerate the SGPRS paper's figures on the simulator.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--fast",
        action="store_true",
        help="smaller grid and shorter horizon for a quick look",
    )
    common.add_argument(
        "--csv",
        default=None,
        help="also write the sweep data to this CSV file",
    )
    commands = parser.add_subparsers(
        dest="figure", required=True, metavar="command"
    )
    for name, help_text in (
        ("fig1", "per-operation speedup table"),
        ("fig3", "scenario 1 (2 contexts) sweep"),
        ("fig4", "scenario 2 (3 contexts) sweep"),
        ("all", "every figure"),
    ):
        commands.add_parser(name, parents=[common], help=help_text)
    sweep = commands.add_parser(
        "sweep",
        parents=[common],
        help="parallel sweep harness: sharded, cached, seed-replicated",
    )
    sweep.add_argument(
        "--scenario",
        default="1",
        help=(
            "scenario to sweep: 1/2 (the paper's identical-task pools) or "
            "any name from --list-scenarios (e.g. mixed_fleet)"
        ),
    )
    sweep.add_argument(
        "--tasks",
        type=_task_counts,
        default=None,
        metavar="N[,N...]",
        help="override the task-count axis (comma-separated)",
    )
    sweep.add_argument(
        "--utilizations",
        type=_utilizations,
        default=None,
        metavar="U[,U...]",
        help=(
            "target-total-utilization axis for synth scenarios "
            "(comma-separated; enables the utilization pivot tables)"
        ),
    )
    sweep.add_argument(
        "--period-class",
        default="",
        choices=("", "implied", "camera", "loguniform"),
        help="override the synth scenario's period class",
    )
    sweep.add_argument(
        "--zoo-mix",
        default="",
        help="override the synth scenario's model mix (see synth.zoo)",
    )
    sweep.add_argument(
        "--deadline-mode",
        default="",
        choices=("", "implicit", "constrained"),
        help="override the synth scenario's deadline mode",
    )
    sweep.add_argument(
        "--arrival",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "arrival-process axis value, repeatable for a multi-column "
            "axis (e.g. --arrival poisson --arrival mmpp:burst=6; "
            "default: periodic — see --list-arrivals)"
        ),
    )
    sweep.add_argument(
        "--admission",
        default="",
        metavar="SPEC",
        help=(
            "admission policy for every point (skip / admit_all / reject "
            "/ queue:depth=N; default: the legacy skip-if-in-flight rule)"
        ),
    )
    sweep.add_argument(
        "--list-arrivals",
        action="store_true",
        help="print the registered arrival processes / admission "
        "policies and exit",
    )
    sweep.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the registered scenarios and exit",
    )
    sweep.add_argument(
        "--list-variants",
        action="store_true",
        help="print the known scheduler variants and exit",
    )
    sweep.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        help="worker processes (0: serial in-process)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result cache; already-computed points are skipped",
    )
    sweep.add_argument(
        "--seeds",
        type=_positive_int,
        default=1,
        help="replication seeds per point (>1 reports mean±ci95)",
    )
    sweep.add_argument(
        "--jitter-cv",
        type=_jitter_cv,
        default=0.0,
        help="per-stage execution-time jitter CV (enables seed variation)",
    )
    sweep.add_argument(
        "--out",
        default=None,
        help="write the full per-seed grid result to this JSON file",
    )
    sweep.add_argument(
        "--aggregate-csv",
        default=None,
        metavar="FILE",
        help=(
            "write the seed-aggregated cells (mean±ci95 of every metric, "
            "tail latency and queue depth included) to this CSV file"
        ),
    )
    sweep.add_argument(
        "--duration",
        type=_positive_float,
        default=None,
        help="override the simulated horizon per point (seconds)",
    )
    sweep.add_argument(
        "--warmup",
        type=_positive_float,
        default=None,
        help="override the per-point warmup window (seconds)",
    )
    dist = sweep.add_argument_group(
        "distributed execution",
        "shard/claim/merge protocol over a shared directory "
        "(see repro.exp.dist)",
    )
    dist.add_argument(
        "--shard",
        type=_shard_spec,
        default=None,
        metavar="I/N",
        help=(
            "evaluate only deterministic round-robin shard I of N "
            "(1-based); merge the N outputs with `repro merge`"
        ),
    )
    dist.add_argument(
        "--claim",
        action="store_true",
        help=(
            "atomically claim pending points through the shared run "
            "directory so concurrent workers (any host) split the grid "
            "dynamically; crashed workers' points are re-claimed after "
            "the heartbeat TTL"
        ),
    )
    from repro.exp.dist import DEFAULT_SKEW, DEFAULT_TTL

    dist.add_argument(
        "--heartbeat",
        type=_positive_float,
        default=DEFAULT_TTL,
        metavar="SECONDS",
        help=(
            f"claim time-to-live: a claim older than this is presumed "
            f"abandoned and stolen (default {DEFAULT_TTL:g}; keep it "
            f"above the cost of the slowest single point)"
        ),
    )
    dist.add_argument(
        "--skew",
        type=_nonnegative_float,
        default=DEFAULT_SKEW,
        metavar="SECONDS",
        help=(
            f"cross-host clock-skew allowance folded into the staleness "
            f"check: a claim is stolen only once its heartbeat is older "
            f"than TTL+skew (default {DEFAULT_SKEW:g})"
        ),
    )
    dist.add_argument(
        "--owner",
        default=None,
        help="claim-owner id (default: <hostname>-<pid>)",
    )
    dist.add_argument(
        "--submit",
        action="store_true",
        help=(
            "initialise the run directory (manifest + empty cache) and "
            "exit without computing; a worker fleet drains it"
        ),
    )
    dist.add_argument(
        "--run-dir",
        default=None,
        help=(
            "shared run directory (manifest + claims + cache); created "
            "on first use, validated against the grid afterwards"
        ),
    )
    dist.add_argument(
        "--resume",
        default=None,
        metavar="RUN",
        help=(
            "resume an interrupted run by id (under --runs-root) or by "
            "run-directory path; only missing points are recomputed"
        ),
    )
    dist.add_argument(
        "--runs-root",
        default=".repro-runs",
        help="where implicit run directories live (default: .repro-runs)",
    )
    dist.add_argument(
        "--record-traces",
        action="store_true",
        help=(
            "ship each computed point's columnar execution trace into "
            "the run directory's traces/ subdirectory (repro.sim.trace_io "
            "format; requires --run-dir, --claim or --resume)"
        ),
    )
    worker = commands.add_parser(
        "worker",
        help=(
            "long-lived sweep daemon: poll a runs root, drain pending "
            "runs via the claim protocol, exit on SIGTERM/idle"
        ),
    )
    worker.add_argument(
        "--runs-root",
        default=".repro-runs",
        help="root holding the run directories to serve (default: "
        ".repro-runs)",
    )
    worker.add_argument(
        "--poll",
        type=_positive_float,
        default=5.0,
        metavar="SECONDS",
        help="re-discovery interval between idle passes (default: 5)",
    )
    worker.add_argument(
        "--max-idle",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "exit after N consecutive poll cycles with nothing to "
            "compute (default: run until signalled)"
        ),
    )
    worker.add_argument(
        "--once",
        action="store_true",
        help="one discover-and-drain pass, then exit",
    )
    worker.add_argument(
        "--owner",
        default=None,
        help="claim-owner id (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--heartbeat",
        type=_positive_float,
        default=DEFAULT_TTL,
        metavar="SECONDS",
        help=(
            f"claim TTL (default {DEFAULT_TTL:g}); the daemon refreshes "
            f"heartbeats in the background, so short TTLs are safe here"
        ),
    )
    worker.add_argument(
        "--skew",
        type=_nonnegative_float,
        default=DEFAULT_SKEW,
        metavar="SECONDS",
        help=f"cross-host clock-skew allowance (default {DEFAULT_SKEW:g})",
    )
    worker.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        help="worker processes per drain pass (0: serial in-process)",
    )
    merge = commands.add_parser(
        "merge",
        help=(
            "merge shard outputs / run directories into one canonical "
            "grid JSON"
        ),
    )
    merge.add_argument(
        "inputs",
        nargs="+",
        metavar="PATH",
        help=(
            "run directories, grid JSON files, or directories of grid "
            "JSON files"
        ),
    )
    merge.add_argument(
        "--out",
        default=None,
        help="write the merged grid document to this JSON file",
    )
    merge.add_argument(
        "--csv",
        default=None,
        help="also write the merged sweep as CSV",
    )
    merge.add_argument(
        "--allow-partial",
        action="store_true",
        help="accept incomplete coverage (merge whatever points exist)",
    )
    synth = commands.add_parser(
        "synth",
        help="synthesize one heterogeneous taskset and print its composition",
    )
    synth.add_argument(
        "--scenario",
        default="mixed_fleet",
        help="synth scenario name (see sweep --list-scenarios)",
    )
    synth.add_argument(
        "--tasks",
        type=_positive_int,
        default=8,
        help="taskset size",
    )
    synth.add_argument(
        "--utilization",
        type=float,
        default=None,
        help="target total utilization (default: the scenario's)",
    )
    synth.add_argument(
        "--seed", type=_nonnegative_int, default=0, help="synthesis seed"
    )
    synth.add_argument(
        "--period-class",
        default="",
        choices=("", "implied", "camera", "loguniform"),
        help="override the scenario's period class",
    )
    synth.add_argument(
        "--zoo-mix", default="", help="override the scenario's model mix"
    )
    synth.add_argument(
        "--deadline-mode",
        default="",
        choices=("", "implicit", "constrained"),
        help="override the scenario's deadline mode",
    )
    synth.add_argument(
        "--arrival",
        default="periodic",
        metavar="SPEC",
        help=(
            "arrival process to summarise against the taskset "
            "(default: periodic; see sweep --list-arrivals)"
        ),
    )
    lint = commands.add_parser(
        "lint",
        help=(
            "AST-based invariant linter: determinism, trace-schema and "
            "version-discipline rules (see src/repro/devtools/README.md)"
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json output is byte-identical across runs)",
    )
    lint.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="only run these rule ids (comma-separated, repeatable)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULES",
        help="skip these rule ids (comma-separated, repeatable)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.figure in ("fig1", "all"):
        _fig1(args)
    if args.figure in ("fig3", "all"):
        _scenario(SCENARIO_1, "Fig. 3", args)
    if args.figure in ("fig4", "all"):
        _scenario(SCENARIO_2, "Fig. 4", args)
    if args.figure == "sweep":
        _sweep(args)
    if args.figure == "merge":
        _merge(args)
    if args.figure == "worker":
        _worker(args)
    if args.figure == "synth":
        _synth(args)
    if args.figure == "lint":
        return _lint(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Structured execution tracing.

Every scheduler decision and GPU event of interest is appended to a
:class:`TraceRecorder` as a :class:`TraceRecord`.  Traces serve three
purposes: debugging scheduler behaviour, asserting fine-grained properties in
tests (e.g. "no more than four stages were ever resident in a context"), and
producing the per-run summaries the analysis package renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Selectable recorder implementations (``RunConfig.trace_backend``):
#: ``"list"`` is this module's one-dataclass-per-event recorder,
#: ``"columnar"`` the array-backed struct-of-arrays recorder in
#: :mod:`repro.sim.trace_columnar` (same API, ~10x less memory per
#: event, identical query results record-for-record).
TRACE_BACKENDS = ("list", "columnar")


def make_trace_recorder(
    backend: str = "list", enabled: bool = True, kinds: Optional[set] = None
):
    """Build a trace recorder of the selected backend.

    Both backends are stdlib-only and expose the same recording/query
    API, so every trace consumer works unchanged against either.
    """
    if backend == "list":
        return TraceRecorder(enabled=enabled, kinds=kinds)
    if backend == "columnar":
        # late import: trace_columnar imports TraceRecord from here
        from repro.sim.trace_columnar import ColumnarTrace

        return ColumnarTrace(enabled=enabled, kinds=kinds)
    raise ValueError(
        f"trace_backend must be one of {TRACE_BACKENDS}, got {backend!r}"
    )


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated timestamp of the event (seconds).
    kind:
        Event category, e.g. ``"stage_dispatch"`` or ``"job_complete"``.
    fields:
        Free-form payload describing the event.
    """

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Return ``fields[key]`` or ``default``."""
        return self.fields.get(key, default)


class TraceRecorder:
    """Append-only trace with cheap filtering.

    Recording can be disabled wholesale (``enabled=False``) for large
    parameter sweeps where only aggregate metrics matter; ``record`` then
    becomes a no-op so hot paths stay cheap.
    """

    def __init__(self, enabled: bool = True, kinds: Optional[set] = None) -> None:
        """Create a recorder.

        Parameters
        ----------
        enabled:
            When ``False`` every :meth:`record` call is dropped.
        kinds:
            Optional allow-list of record kinds; other kinds are dropped.
        """
        self.enabled = enabled
        self._kinds = kinds
        self._records: List[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append a record unless recording is disabled or filtered out."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        self._records.append(TraceRecord(time=time, kind=kind, fields=fields))

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in insertion (= time) order."""
        return [r for r in self._records if r.kind == kind]

    def where(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        """All records matching an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def kinds(self) -> Dict[str, int]:
        """Histogram of record kinds."""
        out: Dict[str, int] = {}
        for record in self._records:
            out[record.kind] = out.get(record.kind, 0) + 1
        return out

    def last(self, kind: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent record (optionally of one kind), or ``None``."""
        if kind is None:
            return self._records[-1] if self._records else None
        for record in reversed(self._records):
            if record.kind == kind:
                return record
        return None

"""Discrete-event simulation substrate.

This package provides the deterministic event engine the GPU simulator and
the schedulers are built on, together with tracing and metrics collection.

Public classes
--------------
SimulationEngine
    Binary-heap discrete event engine with stable FIFO tie-breaking.
Event
    Handle returned by :meth:`SimulationEngine.schedule`; can be cancelled.
TraceRecorder / ColumnarTrace
    Structured execution trace: the list-backed recorder and its
    array-backed columnar drop-in (``make_trace_recorder`` selects one).
write_trace / read_trace
    Compact on-disk trace format (:mod:`repro.sim.trace_io`).
MetricsCollector / JobRecord
    Real-time metrics: total FPS, deadline miss rate, response times.
TraceMetricsAccumulator
    Streaming FPS/DMR/tail/queue-depth accumulation from a trace stream.
"""

from repro.sim.clock import TIME_EPS, times_close
from repro.sim.engine import Event, SimulationEngine, SimulationError
from repro.sim.metrics import (
    JobRecord,
    MetricsCollector,
    StageRecord,
    TraceMetricsAccumulator,
)
from repro.sim.trace import (
    TRACE_BACKENDS,
    TraceRecord,
    TraceRecorder,
    make_trace_recorder,
)
from repro.sim.trace_columnar import ColumnarTrace
from repro.sim.trace_io import (
    TRACE_FORMAT_VERSION,
    get_trace,
    put_trace,
    read_trace,
    trace_from_bytes,
    trace_to_bytes,
    write_trace,
)

__all__ = [
    "TIME_EPS",
    "times_close",
    "Event",
    "SimulationEngine",
    "SimulationError",
    "JobRecord",
    "StageRecord",
    "MetricsCollector",
    "TraceMetricsAccumulator",
    "TraceRecord",
    "TraceRecorder",
    "ColumnarTrace",
    "TRACE_BACKENDS",
    "make_trace_recorder",
    "TRACE_FORMAT_VERSION",
    "trace_to_bytes",
    "trace_from_bytes",
    "write_trace",
    "read_trace",
    "put_trace",
    "get_trace",
]

"""Discrete-event simulation substrate.

This package provides the deterministic event engine the GPU simulator and
the schedulers are built on, together with tracing and metrics collection.

Public classes
--------------
SimulationEngine
    Binary-heap discrete event engine with stable FIFO tie-breaking.
Event
    Handle returned by :meth:`SimulationEngine.schedule`; can be cancelled.
TraceRecorder
    Append-only structured execution trace.
MetricsCollector / JobRecord
    Real-time metrics: total FPS, deadline miss rate, response times.
"""

from repro.sim.clock import TIME_EPS, times_close
from repro.sim.engine import Event, SimulationEngine, SimulationError
from repro.sim.metrics import JobRecord, MetricsCollector, StageRecord
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "TIME_EPS",
    "times_close",
    "Event",
    "SimulationEngine",
    "SimulationError",
    "JobRecord",
    "StageRecord",
    "MetricsCollector",
    "TraceRecord",
    "TraceRecorder",
]

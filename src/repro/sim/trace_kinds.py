"""The trace-kind registry: the single source of trace event names.

Every event category a :class:`~repro.sim.trace.TraceRecorder` ever sees
is named here, once.  Emit sites (:mod:`repro.core.scheduler`,
:mod:`repro.gpu.device`) and consume sites
(:class:`~repro.sim.metrics.TraceMetricsAccumulator`,
:mod:`repro.analysis.timeline`) import these constants instead of
spelling the strings out; the ``S001`` rule of ``python -m repro lint``
(:mod:`repro.devtools.lint`) flags any bare kind literal inside
``sim/``, ``core/`` or ``gpu/``, so a typo'd kind can no longer silently
split one event stream into two.

This module is a leaf — it imports nothing from the package — so any
layer can use it without cycles.  Adding a kind means adding a constant
here; :data:`TRACE_KINDS` is derived automatically and the linter picks
the new name up from this file's AST (the registry is *parsed*, not
imported, so the linter sees the tree it is checking).

The columnar recorder (:mod:`repro.sim.trace_columnar`) deliberately
does **not** pre-seed its intern table from this registry: kind ids are
assigned in first-emission order so on-disk traces stay byte-identical
with pre-registry runs.
"""

from __future__ import annotations

#: A task released a new job (fields: task, job, deadline).
JOB_RELEASE = "job_release"
#: A release dropped at the source — the paper's blocking-client model;
#: counts as a deadline miss (fields: task, job).
JOB_SKIP = "job_skip"
#: A release refused by the admission controller — load shedding, feeds
#: the rejection rate and is excluded from DMR (fields: task, job).
JOB_REJECT = "job_reject"
#: A job's last stage finished (fields: task, job).
JOB_COMPLETE = "job_complete"
#: A job aborted mid-flight via ``SchedulerBase.abort_job`` (fields:
#: task, job).
JOB_SHED = "job_shed"
#: A stage entered its context's queue (fields: stage, context,
#: priority, deadline).
STAGE_RELEASE = "stage_release"
#: A stage kernel started executing on a stream (fields: kernel,
#: context, priority).
KERNEL_START = "kernel_start"
#: A stage kernel ran to completion (fields: kernel, context).
KERNEL_DONE = "kernel_done"
#: The device recomputed its rate allocation (fields: pressure,
#: aggregate_rate, resident).
ALLOCATION = "allocation"

#: Every registered kind.  Derived from the module's constants so the
#: set can never drift from the names above.
TRACE_KINDS = frozenset(
    value
    for name, value in sorted(globals().items())
    if name.isupper() and isinstance(value, str)
)

"""Compact on-disk trace format + StorageBackend shipping.

Traces never used to leave the worker process (``exp/worker.py`` drops
them from IPC because a list-backed trace is megabytes); this module
gives them a wire shape, so run directories can carry per-point traces
and analysis can compare runs event by event.

On-disk format (version 1)
--------------------------
A trace file is::

    magic   b"RPTC"                       (RePro Trace, Columnar)
    version u16 little-endian             (this writer: 1)
    hlen    u32 little-endian
    header  hlen bytes of UTF-8 JSON
    payload concatenated column blobs, each u64-LE length-prefixed

The JSON header carries everything needed to interpret the payload:
record count, the interned kind-name table, the shared string-intern
table, and per kind group the row count plus each column's
``{"name", "code"}`` (codes as in :mod:`repro.sim.trace_columnar`:
``f`` float64, ``i`` int64, ``s`` string-id int32, ``o`` JSON-encoded
object list).  Payload blobs follow in a fixed, fully deterministic
order — times, kind ids, row offsets, then per group (in kind-id
order): global row indices, then per column (in first-seen field
order): the presence bytes and the value blob.  All integers and
floats are little-endian regardless of host byte order.

Compatibility rules
-------------------
* The version is bumped whenever the header schema, the blob order or
  any blob encoding changes; readers reject versions they do not know
  (no silent best-effort parsing of newer files).
* Writers must be deterministic: serialising the same trace twice
  yields identical bytes (the round-trip tests pin
  ``serialise(deserialise(b)) == b``), so traces can be content-hashed
  and deduplicated by the storage layer.
* ``o`` columns hold arbitrary payload objects and are JSON-encoded;
  anything a scheduler records in a trace field must therefore be
  JSON-serialisable (every current trace kind records only floats,
  ints and strings, which never hit the ``o`` path).

Shipping
--------
:func:`write_trace` / :func:`read_trace` work on filesystem paths;
:func:`put_trace` / :func:`get_trace` move the same bytes through any
:class:`~repro.exp.backend.StorageBackend`, which is how the
distributed-sweep layer (:mod:`repro.exp.dist`) attaches traces to run
directories.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from pathlib import Path
from typing import List, Optional, Union

from repro.sim.trace_columnar import (
    FLOAT,
    INT,
    OBJECT,
    STR,
    ColumnarTrace,
    _Column,
    _KindGroup,
    _TYPECODES,
)

MAGIC = b"RPTC"
TRACE_FORMAT_VERSION = 1

_SWAP = sys.byteorder == "big"


def _blob(values) -> bytes:
    """Little-endian bytes of a stdlib array (or JSON for object lists)."""
    if isinstance(values, array):
        if _SWAP:  # pragma: no cover - big-endian hosts only
            values = array(values.typecode, values)
            values.byteswap()
        return values.tobytes()
    return json.dumps(list(values), sort_keys=True).encode()


def _unblob(code_or_typecode: str, data: bytes):
    """Inverse of :func:`_blob` for one typed column."""
    values = array(code_or_typecode)
    values.frombytes(data)
    if _SWAP:  # pragma: no cover - big-endian hosts only
        values.byteswap()
    return values


def trace_to_bytes(trace) -> bytes:
    """Serialise a trace (either recorder backend) to format v1 bytes."""
    if not isinstance(trace, ColumnarTrace):
        trace = ColumnarTrace.from_records(trace)
    header = {
        "records": len(trace),
        "kinds": trace._kind_names,
        "strings": trace._strings,
        "groups": [
            {
                "rows": group.rows,
                "columns": [
                    {"name": name, "code": column.code}
                    for name, column in group.columns.items()
                ],
            }
            for group in trace._groups
        ],
    }
    blobs: List[bytes] = [
        _blob(trace._times),
        _blob(trace._kind_ids),
        _blob(trace._rows),
    ]
    for group in trace._groups:
        blobs.append(_blob(group.indices))
        for column in group.columns.values():
            blobs.append(_blob(column.present))
            blobs.append(_blob(column.values))
    encoded_header = json.dumps(
        header, separators=(",", ":"), ensure_ascii=False
    ).encode()
    out = [
        MAGIC,
        struct.pack("<H", TRACE_FORMAT_VERSION),
        struct.pack("<I", len(encoded_header)),
        encoded_header,
    ]
    for blob in blobs:
        out.append(struct.pack("<Q", len(blob)))
        out.append(blob)
    return b"".join(out)


def trace_from_bytes(data: bytes) -> ColumnarTrace:
    """Deserialise format v1 bytes into a :class:`ColumnarTrace`.

    Raises
    ------
    ValueError
        On a wrong magic, an unsupported version, or a truncated or
        inconsistent payload.
    """
    if data[:4] != MAGIC:
        raise ValueError("not a trace file (bad magic)")
    (version,) = struct.unpack_from("<H", data, 4)
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version}")
    (hlen,) = struct.unpack_from("<I", data, 6)
    try:
        header = json.loads(data[10 : 10 + hlen].decode())
    except ValueError as error:
        raise ValueError(f"corrupt trace header: {error}") from None
    cursor = 10 + hlen

    def next_blob() -> bytes:
        nonlocal cursor
        if cursor + 8 > len(data):
            raise ValueError("truncated trace payload")
        (length,) = struct.unpack_from("<Q", data, cursor)
        cursor += 8
        if cursor + length > len(data):
            raise ValueError("truncated trace payload")
        blob = data[cursor : cursor + length]
        cursor += length
        return blob

    trace = ColumnarTrace()
    trace._kind_names = list(header["kinds"])
    trace._kind_lookup = {
        name: index for index, name in enumerate(trace._kind_names)
    }
    trace._strings = list(header["strings"])
    trace._string_ids = {
        value: index for index, value in enumerate(trace._strings)
    }
    trace._times = _unblob("d", next_blob())
    trace._kind_ids = _unblob("i", next_blob())
    trace._rows = _unblob("q", next_blob())
    records = header["records"]
    if not (
        len(trace._times) == len(trace._kind_ids) == len(trace._rows) == records
    ):
        raise ValueError("inconsistent trace payload (record counts differ)")
    for kind_id, group_header in enumerate(header["groups"]):
        group = _KindGroup(kind_id)
        group.rows = group_header["rows"]
        group.indices = _unblob("q", next_blob())
        if len(group.indices) != group.rows:
            raise ValueError("inconsistent trace payload (group rows differ)")
        for column_header in group_header["columns"]:
            code = column_header["code"]
            if code not in (FLOAT, INT, STR, OBJECT):
                raise ValueError(f"unknown column code: {code!r}")
            column = _Column(code)
            column.present = _unblob("b", next_blob())
            blob = next_blob()
            if code == OBJECT:
                column.values = json.loads(blob.decode())
            else:
                column.values = _unblob(_TYPECODES[code], blob)
            if len(column.present) != group.rows or len(
                column.values
            ) != group.rows:
                raise ValueError(
                    "inconsistent trace payload (column rows differ)"
                )
            group.columns[column_header["name"]] = column
        trace._groups.append(group)
    if len(trace._groups) != len(trace._kind_names):
        raise ValueError("inconsistent trace payload (kind groups differ)")
    return trace


def write_trace(trace, path: Union[str, Path]) -> Path:
    """Serialise a trace (either backend) to ``path``; returns the path."""
    path = Path(path)
    path.write_bytes(trace_to_bytes(trace))
    return path


def read_trace(path: Union[str, Path]) -> ColumnarTrace:
    """Load a trace file written by :func:`write_trace`."""
    return trace_from_bytes(Path(path).read_bytes())


def put_trace(backend, key: str, trace) -> None:
    """Publish a trace under ``key`` through a StorageBackend.

    Uses ``atomic_replace`` — readers see a complete trace or none; a
    re-computed point simply overwrites its trace with identical bytes
    (serialisation is deterministic).
    """
    if "/" in key:
        backend.ensure_prefix(key.rsplit("/", 1)[0])
    backend.atomic_replace(key, trace_to_bytes(trace))


def get_trace(backend, key: str) -> Optional[ColumnarTrace]:
    """Load a trace from a StorageBackend, or ``None`` when absent."""
    record = backend.read(key)
    if record is None:
        return None
    return trace_from_bytes(record.data)

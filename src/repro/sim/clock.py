"""Time handling helpers for the discrete-event engine.

Simulated time is a ``float`` measured in **seconds**.  Rate-based progress
updates (see :mod:`repro.gpu.device`) repeatedly add small increments, so the
engine and its clients must never compare simulated times with ``==``.  The
helpers here centralise the tolerance used across the code base.
"""

from __future__ import annotations

#: Absolute tolerance for comparing simulated timestamps, in seconds.
#: One nanosecond of simulated time is far below any modelled latency
#: (kernel runtimes are in the 10us..10ms range) yet far above accumulated
#: float64 rounding error for the simulation horizons used here (< 1e3 s).
TIME_EPS: float = 1e-9


def times_close(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` when two simulated timestamps are indistinguishable."""
    return abs(a - b) <= eps


def is_before(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` when time ``a`` is strictly before ``b``.

    Timestamps closer than ``eps`` are treated as simultaneous.
    """
    return a < b - eps


def validate_time(value: float, name: str = "time") -> float:
    """Validate that ``value`` is a finite, non-negative timestamp.

    Raises
    ------
    ValueError
        If ``value`` is negative, NaN, or infinite.
    """
    if not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if value != value:  # NaN check without importing math
        raise ValueError(f"{name} must not be NaN")
    if value in (float("inf"), float("-inf")):
        raise ValueError(f"{name} must be finite")
    if value < 0.0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value

"""Array-backed columnar trace recorder.

:class:`~repro.sim.trace.TraceRecorder` keeps one frozen dataclass plus
one dict per event — convenient, but a million-event run (which the
vectorised engine and open-system arrivals readily produce) costs
hundreds of bytes per event and pushes large sweeps into
``record_trace=False`` blindness.  :class:`ColumnarTrace` stores the
same stream as flat per-column arrays instead:

* event **kinds are interned** to small integer ids;
* ``time`` / kind id / per-kind row bookkeeping live in stdlib
  :mod:`array` buffers (8 + 4 + 8 + 8 bytes per event);
* each ``(kind, field)`` pair gets its own typed column — ``float`` and
  ``int`` values in packed arrays, strings interned through one shared
  string table, anything else in a per-column object list fallback;
* records returned by the query API are **lazy views**: a real
  :class:`~repro.sim.trace.TraceRecord` is materialised only when a
  record is actually iterated or filtered, so holding a trace is cheap
  and reading one is unchanged.

The class is drop-in API-compatible with :class:`TraceRecorder`
(``record`` / ``__iter__`` / ``__len__`` / ``of_kind`` / ``where`` /
``kinds`` / ``last`` / ``clear`` / ``enabled``), selectable per run via
``RunConfig(trace_backend="columnar")``, and the payload round-trips to
disk through :mod:`repro.sim.trace_io`.

Everything here is stdlib-only so scalar simulation modes keep working
without numpy.  When numpy *is* installed, :meth:`ColumnarTrace.column`
and :meth:`ColumnarTrace.times` hand back packed ``ndarray`` snapshots
(one buffer copy — a live view would export-lock the growable buffer
and make the next ``record`` raise ``BufferError``) for vectorised
analytics.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.trace import TraceRecord

try:  # optional: zero-copy views for analytics, never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: Column type codes: packed float64, packed int64, interned string ids,
#: or an arbitrary-object list fallback (also used after a type clash).
FLOAT, INT, STR, OBJECT = "f", "i", "s", "o"

_TYPECODES = {FLOAT: "d", INT: "q", STR: "i"}
_FILLERS = {FLOAT: 0.0, INT: 0, STR: -1}
_NUMPY_DTYPES = {FLOAT: "<f8", INT: "<i8", STR: "<i4"}


class _Column:
    """One ``(kind, field)`` value column, dense over its kind's rows.

    ``present`` is a parallel 0/1 byte per row: kinds whose field sets
    vary between records stay representable (a missing field simply
    reads back as absent from the materialised ``fields`` dict).
    """

    __slots__ = ("code", "values", "present")

    def __init__(self, code: str, rows_before: int = 0) -> None:
        self.code = code
        self.values = (
            array(_TYPECODES[code]) if code in _TYPECODES else []
        )
        self.present = array("b")
        for _ in range(rows_before):
            self.append_missing()

    def append_missing(self) -> None:
        self.present.append(0)
        if self.code == OBJECT:
            self.values.append(None)
        else:
            self.values.append(_FILLERS[self.code])

    def to_object(self, trace: "ColumnarTrace") -> None:
        """Demote to the object fallback (on a value/type clash)."""
        decoded = [
            trace._decode(self.code, value) if flag else None
            for value, flag in zip(self.values, self.present)
        ]
        self.code = OBJECT
        self.values = decoded


def _code_for(value: Any) -> str:
    # bool subclasses int: route it to the object column so it reads
    # back as a bool, not 0/1
    if isinstance(value, bool):
        return OBJECT
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STR
    return OBJECT


class _KindGroup:
    """All rows of one interned kind: global indices + field columns."""

    __slots__ = ("kind_id", "rows", "indices", "columns")

    def __init__(self, kind_id: int) -> None:
        self.kind_id = kind_id
        self.rows = 0
        #: Global record index of each row (for ``of_kind`` ordering).
        self.indices = array("q")
        #: Field name -> column, in first-seen order.
        self.columns: Dict[str, _Column] = {}

    def append(
        self, index: int, fields: Dict[str, Any], trace: "ColumnarTrace"
    ) -> None:
        self.indices.append(index)
        seen = 0
        for name, column in self.columns.items():
            value = fields.get(name)
            if value is None and name not in fields:
                column.append_missing()
                continue
            seen += 1
            self._append_value(column, value, trace)
        if seen != len(fields):
            for name, value in fields.items():
                if name in self.columns:
                    continue
                column = _Column(_code_for(value), rows_before=self.rows)
                self.columns[name] = column
                self._append_value(column, value, trace)
        self.rows += 1

    def _append_value(
        self, column: _Column, value: Any, trace: "ColumnarTrace"
    ) -> None:
        code = _code_for(value)
        if column.code != code and column.code != OBJECT:
            column.to_object(trace)
        column.present.append(1)
        if column.code == OBJECT:
            column.values.append(value)
        elif code == STR:
            column.values.append(trace._intern(value))
        else:
            try:
                column.values.append(value)
            except OverflowError:  # int beyond 64 bits
                column.to_object(trace)
                column.values.append(value)

    def fields_at(self, row: int, trace: "ColumnarTrace") -> Dict[str, Any]:
        return {
            name: trace._decode(column.code, column.values[row])
            for name, column in self.columns.items()
            if column.present[row]
        }


class ColumnarTrace:
    """Columnar drop-in for :class:`~repro.sim.trace.TraceRecorder`.

    Same constructor signature and query API; identical query results
    record-for-record (pinned by the recorder-equivalence tests).  See
    the module docstring for the storage layout.
    """

    def __init__(self, enabled: bool = True, kinds: Optional[set] = None) -> None:
        self.enabled = enabled
        self._kinds = kinds
        self._times = array("d")
        self._kind_ids = array("i")  # kind id per record
        self._rows = array("q")  # record's row within its kind group
        self._kind_names: List[str] = []
        self._kind_lookup: Dict[str, int] = {}
        self._groups: List[_KindGroup] = []
        self._strings: List[str] = []
        self._string_ids: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Interning helpers
    # ------------------------------------------------------------------
    def _intern(self, value: str) -> int:
        interned = self._string_ids.get(value)
        if interned is None:
            interned = len(self._strings)
            self._string_ids[value] = interned
            self._strings.append(value)
        return interned

    def _decode(self, code: str, value: Any) -> Any:
        return self._strings[value] if code == STR else value

    # ------------------------------------------------------------------
    # Recording (TraceRecorder API)
    # ------------------------------------------------------------------
    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append a record unless recording is disabled or filtered out."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        kind_id = self._kind_lookup.get(kind)
        if kind_id is None:
            kind_id = len(self._kind_names)
            self._kind_lookup[kind] = kind_id
            self._kind_names.append(kind)
            self._groups.append(_KindGroup(kind_id))
        group = self._groups[kind_id]
        self._times.append(time)
        self._kind_ids.append(kind_id)
        self._rows.append(group.rows)
        group.append(len(self._times) - 1, fields, self)

    def clear(self) -> None:
        """Drop all records (kind/string intern tables included)."""
        self.__init__(enabled=self.enabled, kinds=self._kinds)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[TraceRecord]:
        for index in range(len(self._times)):
            yield self._materialise(index)

    def _materialise(self, index: int) -> TraceRecord:
        kind_id = self._kind_ids[index]
        group = self._groups[kind_id]
        return TraceRecord(
            time=self._times[index],
            kind=self._kind_names[kind_id],
            fields=group.fields_at(self._rows[index], self),
        )

    # ------------------------------------------------------------------
    # Queries (TraceRecorder API)
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in insertion (= time) order."""
        kind_id = self._kind_lookup.get(kind)
        if kind_id is None:
            return []
        return [self._materialise(i) for i in self._groups[kind_id].indices]

    def where(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        """All records matching an arbitrary predicate."""
        return [record for record in self if predicate(record)]

    def kinds(self) -> Dict[str, int]:
        """Histogram of record kinds (insertion order, like the list
        recorder's)."""
        out: Dict[str, int] = {}
        for kind_id in self._kind_ids:
            name = self._kind_names[kind_id]
            out[name] = out.get(name, 0) + 1
        return out

    def last(self, kind: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent record (optionally of one kind), or ``None``."""
        if kind is None:
            if not self._times:
                return None
            return self._materialise(len(self._times) - 1)
        kind_id = self._kind_lookup.get(kind)
        if kind_id is None or not self._groups[kind_id].rows:
            return None
        return self._materialise(self._groups[kind_id].indices[-1])

    # ------------------------------------------------------------------
    # Columnar extras (beyond the TraceRecorder API)
    # ------------------------------------------------------------------
    def times(self):
        """All record timestamps as a flat array.

        A packed numpy snapshot when numpy is installed, else the live
        stdlib array (treat it as read-only).
        """
        if _np is not None:
            return _np.frombuffer(bytes(self._times), dtype="<f8")
        return self._times

    def column(self, kind: str, field: str):
        """One ``(kind, field)`` column as a flat array.

        Float/int columns come back as packed arrays (numpy snapshots
        when numpy is installed); string columns as a list of decoded
        strings; object columns as a copy of the raw list.  Rows where
        the field was absent hold the column's filler value — check
        :meth:`of_kind` when per-record presence matters.
        """
        kind_id = self._kind_lookup.get(kind)
        if kind_id is None:
            raise KeyError(f"no records of kind {kind!r}")
        column = self._groups[kind_id].columns.get(field)
        if column is None:
            raise KeyError(f"kind {kind!r} has no field {field!r}")
        if column.code == STR:
            return [self._strings[i] for i in column.values]
        if column.code == OBJECT:
            return list(column.values)
        if _np is not None:
            return _np.frombuffer(
                bytes(column.values), dtype=_NUMPY_DTYPES[column.code]
            )
        return column.values

    def nbytes(self) -> int:
        """Approximate resident payload bytes (buffers + string table).

        Python object overhead of the recorder itself and the intern
        dicts is excluded; this is the figure the trace benchmark's
        bytes/event guardrail tracks alongside the allocator-measured
        total.
        """
        total = (
            self._times.itemsize * len(self._times)
            + self._kind_ids.itemsize * len(self._kind_ids)
            + self._rows.itemsize * len(self._rows)
        )
        for group in self._groups:
            total += group.indices.itemsize * len(group.indices)
            for column in group.columns.values():
                total += len(column.present)
                if isinstance(column.values, array):
                    total += column.values.itemsize * len(column.values)
                else:
                    total += 8 * len(column.values)
        total += sum(len(s.encode()) for s in self._strings)
        return total

    @classmethod
    def from_records(cls, records) -> "ColumnarTrace":
        """Build a columnar trace from any iterable of trace records
        (e.g. a list-backed :class:`TraceRecorder`)."""
        trace = cls()
        for record in records:
            trace.record(record.time, record.kind, **record.fields)
        return trace

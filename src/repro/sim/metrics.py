"""Real-time metrics: FPS, miss rate, tail latency, goodput, rejections.

The paper evaluates schedulers with two metrics (Section V):

* **Total FPS** — completed inference frames per second summed over all
  tasks, measured over a steady-state window.
* **Deadline Miss Rate (DMR)** — the fraction of job instances that did not
  complete by their absolute deadline.

The open-system arrivals subsystem (:mod:`repro.workloads.arrivals` +
:mod:`repro.core.admission`) adds the serving-stack view of the same run:

* **Rejection rate** — the fraction of post-warmup releases the admission
  controller turned away (trace kind ``job_reject``).  Rejected jobs are
  *excluded* from DMR: the client was refused up front, which is a
  load-shedding decision, not a missed frame (``job_skip`` drops, by
  contrast, still count as misses).
* **Goodput** — completed-*and*-met-deadline frames per second: the
  throughput a deadline-sensitive consumer actually benefits from.
* **Tail latency** — nearest-rank response-time percentiles (p99/p999).
* **Queue depth** — time-weighted mean and max of the number of admitted
  jobs in flight, fed by the scheduler's admission accounting.

All are computed from per-job :class:`JobRecord` entries collected by a
:class:`MetricsCollector`.  Stage-level records are kept as well so the
scheduler's virtual-deadline behaviour can be analysed.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.trace_kinds import (
    JOB_COMPLETE,
    JOB_REJECT,
    JOB_RELEASE,
    JOB_SHED,
    JOB_SKIP,
)


def nearest_rank(sorted_values: List[float], fraction: float) -> Optional[float]:
    """Ceil-based nearest-rank percentile of a pre-sorted sample.

    The value at 1-based rank ``ceil(fraction * n)`` (fraction 0 maps to
    the minimum); ``None`` on an empty sample.  Shared by
    :class:`MetricsCollector` and :class:`TraceMetricsAccumulator` so the
    in-process and trace-streamed tails use one definition.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if not sorted_values:
        return None
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class JobRecord:
    """Lifecycle of one released job instance.

    ``rejected`` marks jobs the admission controller refused; they are
    excluded from deadline accounting and counted by the rejection-rate
    metric instead.
    """

    task_name: str
    job_index: int
    release_time: float
    absolute_deadline: float
    finish_time: Optional[float] = None
    rejected: bool = False

    @property
    def completed(self) -> bool:
        """Whether the job ran to completion (regardless of timeliness)."""
        return self.finish_time is not None

    def missed(self, now: float) -> bool:
        """Whether the job's deadline is missed as of simulated time ``now``.

        A job misses when it finished after its deadline, or has not finished
        and its deadline already passed.
        """
        if self.finish_time is not None:
            return self.finish_time > self.absolute_deadline
        return now > self.absolute_deadline

    @property
    def response_time(self) -> Optional[float]:
        """Completion latency (finish - release), or ``None`` if unfinished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.release_time


@dataclass
class StageRecord:
    """Lifecycle of one stage instance within a job."""

    task_name: str
    job_index: int
    stage_index: int
    release_time: float
    virtual_deadline: float
    finish_time: Optional[float] = None
    context_id: Optional[int] = None
    priority: Optional[str] = None

    def missed(self, now: float) -> bool:
        """Whether the stage missed its virtual deadline as of ``now``."""
        if self.finish_time is not None:
            return self.finish_time > self.virtual_deadline
        return now > self.virtual_deadline


class MetricsCollector:
    """Collects job/stage records and derives the paper's two metrics.

    Parameters
    ----------
    warmup:
        Jobs *released* before ``warmup`` seconds are excluded from every
        steady-state metric, so transients from an empty system do not
        bias the numbers.

    **Warmup rule.**  One population underlies all per-job metrics: jobs
    with ``release_time >= warmup`` (release exactly at the boundary
    counts).  FPS, per-task FPS, goodput, DMR, response times and the
    rejection rate all draw from it, so their numerators and
    denominators agree on any one run.  (A previous version filtered
    FPS/goodput only on ``finish_time >= warmup``, which counted frames
    from jobs released *during* warmup — work DMR's population never
    saw, making the throughput and miss-rate views of one run
    disagree.)  Completion-window bounds still apply on top: FPS and
    goodput count only completions with ``finish_time <= now``.
    """

    def __init__(self, warmup: float = 0.0) -> None:
        self.warmup = warmup
        self.jobs: List[JobRecord] = []
        self.stages: List[StageRecord] = []
        self._job_index: Dict[Tuple[str, int], JobRecord] = {}
        #: Queue-depth step function: ``(time, depth)`` transitions in
        #: non-decreasing time order (admitted jobs in flight system-wide).
        self._depth_steps: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def job_released(
        self, task_name: str, job_index: int, release_time: float, deadline: float
    ) -> JobRecord:
        """Record a new job release and return its record."""
        record = JobRecord(
            task_name=task_name,
            job_index=job_index,
            release_time=release_time,
            absolute_deadline=deadline,
        )
        self.jobs.append(record)
        self._job_index[(task_name, job_index)] = record
        return record

    def job_completed(self, task_name: str, job_index: int, finish_time: float) -> None:
        """Record the completion of a previously released job."""
        key = (task_name, job_index)
        record = self._job_index.get(key)
        if record is None:
            raise KeyError(f"completion for unknown job {key}")
        if record.finish_time is not None:
            raise ValueError(f"job {key} completed twice")
        if record.rejected:
            raise ValueError(f"job {key} completed after being rejected")
        record.finish_time = finish_time

    def job_rejected(self, task_name: str, job_index: int) -> None:
        """Mark a previously released job as refused by admission control.

        The job stays in :attr:`jobs` (it *was* released) but flips into
        the rejection accounting: it no longer counts as a decided job
        for DMR and instead feeds :meth:`rejection_rate`.
        """
        key = (task_name, job_index)
        record = self._job_index.get(key)
        if record is None:
            raise KeyError(f"rejection for unknown job {key}")
        if record.finish_time is not None:
            raise ValueError(f"job {key} rejected after completing")
        record.rejected = True

    def record_queue_depth(self, time: float, depth: int) -> None:
        """Record a transition of the system-wide admitted-jobs count.

        The scheduler calls this on every admission and departure;
        successive calls must carry non-decreasing times (simulated time
        never rewinds).
        """
        if depth < 0:
            raise ValueError(f"queue depth must be >= 0, got {depth}")
        if self._depth_steps and time < self._depth_steps[-1][0]:
            raise ValueError(
                f"queue-depth transition at {time} precedes previous at "
                f"{self._depth_steps[-1][0]}"
            )
        self._depth_steps.append((time, depth))

    def stage_released(
        self,
        task_name: str,
        job_index: int,
        stage_index: int,
        release_time: float,
        virtual_deadline: float,
    ) -> StageRecord:
        """Record a stage release and return its record."""
        record = StageRecord(
            task_name=task_name,
            job_index=job_index,
            stage_index=stage_index,
            release_time=release_time,
            virtual_deadline=virtual_deadline,
        )
        self.stages.append(record)
        return record

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def _measured_jobs(self, now: float) -> List[JobRecord]:
        """Jobs that count toward DMR at time ``now``.

        A job counts when it was released after warmup and its deadline has
        passed (so its outcome is decided).  Rejected jobs never count:
        the admission controller refused them up front, so their outcome
        is a *rejection* (see :meth:`rejection_rate`), not a miss.
        """
        return [
            job
            for job in self.jobs
            if not job.rejected
            and job.release_time >= self.warmup
            and job.absolute_deadline <= now
        ]

    def total_fps(self, now: float) -> float:
        """Completed frames per second over the post-warmup window.

        Counts completions (by ``now``) of post-warmup-released jobs
        only — the same population DMR measures (see the class
        docstring's warmup rule).
        """
        window = now - self.warmup
        if window <= 0.0:
            return 0.0
        completed = sum(
            1
            for job in self.jobs
            if job.finish_time is not None
            and job.release_time >= self.warmup
            and job.finish_time <= now
        )
        return completed / window

    def deadline_miss_rate(self, now: float) -> float:
        """Fraction of decided post-warmup jobs that missed their deadline."""
        jobs = self._measured_jobs(now)
        if not jobs:
            return 0.0
        missed = sum(1 for job in jobs if job.missed(now))
        return missed / len(jobs)

    def per_task_fps(self, now: float) -> Dict[str, float]:
        """Completed frames per second broken down by task (same
        post-warmup-released population as :meth:`total_fps`)."""
        window = now - self.warmup
        out: Dict[str, float] = {}
        if window <= 0.0:
            return out
        for job in self.jobs:
            if (
                job.finish_time is not None
                and job.release_time >= self.warmup
                and job.finish_time <= now
            ):
                out[job.task_name] = out.get(job.task_name, 0.0) + 1.0
        return {name: count / window for name, count in out.items()}

    def per_task_dmr(self, now: float) -> Dict[str, float]:
        """Deadline miss rate broken down by task."""
        counts: Dict[str, List[int]] = {}
        for job in self._measured_jobs(now):
            total_missed = counts.setdefault(job.task_name, [0, 0])
            total_missed[0] += 1
            if job.missed(now):
                total_missed[1] += 1
        return {
            name: missed / total for name, (total, missed) in counts.items()
        }

    def stage_miss_rate(self, now: float) -> float:
        """Fraction of decided stage instances that missed virtual deadlines."""
        decided = [
            s
            for s in self.stages
            if s.release_time >= self.warmup and s.virtual_deadline <= now
        ]
        if not decided:
            return 0.0
        return sum(1 for s in decided if s.missed(now)) / len(decided)

    def response_times(self) -> List[float]:
        """Response times of all completed post-warmup jobs, sorted."""
        values = [
            job.response_time
            for job in self.jobs
            if job.response_time is not None and job.release_time >= self.warmup
        ]
        return sorted(values)

    def response_time_percentile(self, fraction: float) -> Optional[float]:
        """Nearest-rank percentile (0..1) of response times, or ``None``.

        Uses the explicit ceil-based nearest-rank definition: the value
        at rank ``ceil(fraction * n)`` (1-based; fraction 0 maps to the
        minimum).  A previous implementation used ``int(round(...))``,
        whose round-half-even tie-breaking made half-way fractions flap
        between adjacent ranks as the sample count changed; the ceil
        definition is monotone in ``fraction`` and stable.
        """
        return nearest_rank(self.response_times(), fraction)

    def rejection_rate(self, now: float) -> float:
        """Fraction of post-warmup releases refused by admission control.

        The population is every job with ``release_time >= warmup`` — the
        same release-based boundary DMR/FPS/goodput use (a release at
        exactly ``warmup`` is post-warmup).  Rejections are decided at
        release time, so nothing waits for a deadline to pass; ``now`` is
        accepted for signature parity with the other rate metrics but does
        not bound the population (jobs are only recorded once released, so
        a release after ``now`` cannot be present anyway — an earlier
        version filtered ``release_time <= now``, silently excluding a
        release at exactly ``now`` from the denominator).
        """
        released = [
            job for job in self.jobs if job.release_time >= self.warmup
        ]
        if not released:
            return 0.0
        return sum(1 for job in released if job.rejected) / len(released)

    def rejected_count(self) -> int:
        """Total jobs rejected by admission control (warmup included)."""
        return sum(1 for job in self.jobs if job.rejected)

    def goodput(self, now: float) -> float:
        """Completed-and-met-deadline frames per second after warmup.

        The deadline-sensitive counterpart of :meth:`total_fps`: a frame
        that finishes late still counts toward FPS (work was done) but
        not toward goodput (the consumer could no longer use it).  Same
        post-warmup-released population as FPS and DMR.
        """
        window = now - self.warmup
        if window <= 0.0:
            return 0.0
        good = sum(
            1
            for job in self.jobs
            if job.finish_time is not None
            and job.release_time >= self.warmup
            and job.finish_time <= now
            and job.finish_time <= job.absolute_deadline
        )
        return good / window

    def mean_queue_depth(self, now: float) -> float:
        """Time-weighted mean admitted-jobs-in-flight over ``[warmup, now]``.

        Derived from the step function recorded by
        :meth:`record_queue_depth`; 0.0 when nothing was ever recorded or
        the window is empty.
        """
        window = now - self.warmup
        if window <= 0.0 or not self._depth_steps:
            return 0.0
        weighted = 0.0
        # Depth in effect at the window start: the last transition at or
        # before warmup (0 jobs before the first transition).
        depth = 0
        start = self.warmup
        for time, next_depth in self._depth_steps:
            if time <= self.warmup:
                depth = next_depth
                continue
            if time >= now:
                break
            weighted += depth * (time - start)
            start = time
            depth = next_depth
        weighted += depth * (now - start)
        return weighted / window

    def max_queue_depth(self, now: float) -> int:
        """Peak admitted-jobs-in-flight over ``[warmup, now]``.

        Includes the depth carried into the window by the last transition
        at or before warmup.
        """
        peak = 0
        carried = 0
        for time, depth in self._depth_steps:
            if time <= self.warmup:
                carried = depth
            elif time <= now:
                peak = max(peak, depth)
            else:
                break
        return max(peak, carried)

    def released_count(self) -> int:
        """Total jobs released (including during warmup)."""
        return len(self.jobs)

    def completed_count(self) -> int:
        """Total jobs completed (including during warmup)."""
        return sum(1 for job in self.jobs if job.finish_time is not None)


class TraceMetricsAccumulator:
    """Streaming FPS/DMR/tail/queue-depth accumulation from a trace stream.

    Feeds on trace records (either recorder backend, or records decoded
    straight off a :mod:`repro.sim.trace_io` file) in time order and
    reproduces :class:`MetricsCollector`'s steady-state numbers without
    ever materialising the trace: resident state is one pending
    admission decision, the in-flight job dict, and packed per-job
    arrays (response times, decided deadlines) — O(jobs), never
    O(trace records).  Queue depth is integrated on the fly, so the
    step function is not retained at all.

    The accumulator consumes the ``job_*`` lifecycle kinds
    (``job_release`` — which must carry the ``deadline`` field —
    ``job_skip``, ``job_reject``, ``job_complete``, ``job_shed``) and
    ignores every other kind, so it can be fed a full trace or a
    kind-filtered one.  Admission is inferred from record adjacency: a
    release's ``job_skip``/``job_reject`` is emitted before any other
    record of that job, so a release followed by anything else was
    admitted.

    Usage::

        acc = TraceMetricsAccumulator(warmup=2.0)
        for record in read_trace(path):   # lazy views, one at a time
            acc.feed(record)
        summary = acc.finalize(now=duration)
    """

    def __init__(self, warmup: float = 0.0) -> None:
        self.warmup = warmup
        #: (task, job) -> (release_time, deadline) of admitted, in-flight jobs.
        self._open: Dict[Tuple[str, int], Tuple[float, float]] = {}
        #: The release awaiting its admission outcome (see class docstring).
        self._pending: Optional[Tuple[Tuple[str, int], float, float]] = None
        self._released_total = 0
        self._completed_total = 0
        self._released_post = 0
        self._rejected_total = 0
        self._rejected_post = 0
        #: Response times of completed post-warmup-released jobs.
        self._responses = array("d")
        #: (deadline, missed) of completed post-warmup jobs, for DMR.
        self._completed_deadlines = array("d")
        self._completed_missed = array("b")
        #: Deadlines of post-warmup jobs shed without completing.
        self._unfinished_deadlines = array("d")
        # queue-depth integration state
        self._depth = 0
        self._last_step = 0.0
        self._carried = 0
        self._weighted = 0.0
        self._peak = 0
        self._any_step = False

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(self, record) -> None:
        """Consume one trace record (records must arrive in time order)."""
        kind = record.kind
        if kind == JOB_RELEASE:
            self._resolve_pending()
            key = (record.get("task"), record.get("job"))
            deadline = record.get("deadline")
            if deadline is None:
                raise ValueError(
                    "job_release record lacks the 'deadline' field; "
                    "trace predates the streaming-metrics format"
                )
            self._released_total += 1
            if record.time >= self.warmup:
                self._released_post += 1
            self._pending = (key, record.time, deadline)
            return
        if kind in (JOB_SKIP, JOB_REJECT):
            key = (record.get("task"), record.get("job"))
            if self._pending is not None and self._pending[0] == key:
                _, release, deadline = self._pending
                self._pending = None
                if kind == JOB_REJECT:
                    # rejections feed the rejection rate, never DMR
                    self._rejected_total += 1
                    if release >= self.warmup:
                        self._rejected_post += 1
                elif release >= self.warmup:
                    # a source-skipped frame is a decided deadline miss
                    self._unfinished_deadlines.append(deadline)
                return
        self._resolve_pending()
        if kind == JOB_COMPLETE:
            key = (record.get("task"), record.get("job"))
            entry = self._open.pop(key, None)
            self._completed_total += 1
            self._step_depth(record.time, self._depth - 1)
            if entry is not None and entry[0] >= self.warmup:
                release, deadline = entry
                self._responses.append(record.time - release)
                self._completed_deadlines.append(deadline)
                self._completed_missed.append(
                    1 if record.time > deadline else 0
                )
        elif kind == JOB_SHED:
            key = (record.get("task"), record.get("job"))
            entry = self._open.pop(key, None)
            self._step_depth(record.time, self._depth - 1)
            if entry is not None and entry[0] >= self.warmup:
                self._unfinished_deadlines.append(entry[1])

    def _resolve_pending(self) -> None:
        """Commit the held release as admitted (nothing refused it)."""
        if self._pending is None:
            return
        key, release, deadline = self._pending
        self._pending = None
        self._open[key] = (release, deadline)
        self._step_depth(release, self._depth + 1)

    def _step_depth(self, time: float, depth: int) -> None:
        depth = max(depth, 0)
        if time > self.warmup:
            start = max(self._last_step, self.warmup)
            if time > start:
                self._weighted += self._depth * (time - start)
            self._peak = max(self._peak, depth)
        else:
            self._carried = depth
        self._depth = depth
        self._last_step = time
        self._any_step = True

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def finalize(self, now: float) -> Dict[str, object]:
        """Steady-state metrics at ``now`` (must be >= the last record).

        Returns the same keys :meth:`RunResult.metrics_summary` ships
        for the corresponding metrics; safe to call repeatedly (the
        accumulated state is not consumed).
        """
        self._resolve_pending()
        window = now - self.warmup
        decided = missed = 0
        for deadline, was_missed in zip(
            self._completed_deadlines, self._completed_missed
        ):
            if deadline <= now:
                decided += 1
                missed += was_missed
        for deadline in self._unfinished_deadlines:
            if deadline <= now:
                decided += 1
                missed += 1
        for release, deadline in self._open.values():
            if release >= self.warmup and deadline <= now:
                decided += 1
                missed += 1
        completed_post = len(self._responses)
        good = sum(1 for was_missed in self._completed_missed if not was_missed)
        responses = sorted(self._responses)
        if window > 0.0 and self._any_step:
            tail_start = max(self._last_step, self.warmup)
            weighted = self._weighted + self._depth * max(
                now - tail_start, 0.0
            )
            mean_depth = weighted / window
        else:
            mean_depth = 0.0
        return {
            "total_fps": completed_post / window if window > 0.0 else 0.0,
            "dmr": missed / decided if decided else 0.0,
            "goodput": good / window if window > 0.0 else 0.0,
            "rejection_rate": (
                self._rejected_post / self._released_post
                if self._released_post
                else 0.0
            ),
            "released": self._released_total,
            "completed": self._completed_total,
            "rejected": self._rejected_total,
            "p99_response": nearest_rank(responses, 0.99),
            "p999_response": nearest_rank(responses, 0.999),
            "mean_queue_depth": mean_depth,
            "max_queue_depth": max(self._peak, self._carried),
        }


def metrics_from_trace(
    records: Iterable, warmup: float, now: float
) -> Dict[str, object]:
    """One-shot streaming accumulation over any trace-record iterable."""
    accumulator = TraceMetricsAccumulator(warmup=warmup)
    for record in records:
        accumulator.feed(record)
    return accumulator.finalize(now)

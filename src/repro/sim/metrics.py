"""Real-time metrics: total FPS, deadline miss rate, response times.

The paper evaluates schedulers with two metrics (Section V):

* **Total FPS** — completed inference frames per second summed over all
  tasks, measured over a steady-state window.
* **Deadline Miss Rate (DMR)** — the fraction of job instances that did not
  complete by their absolute deadline.

Both are computed from per-job :class:`JobRecord` entries collected by a
:class:`MetricsCollector`.  Stage-level records are kept as well so the
scheduler's virtual-deadline behaviour can be analysed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class JobRecord:
    """Lifecycle of one periodic job instance."""

    task_name: str
    job_index: int
    release_time: float
    absolute_deadline: float
    finish_time: Optional[float] = None

    @property
    def completed(self) -> bool:
        """Whether the job ran to completion (regardless of timeliness)."""
        return self.finish_time is not None

    def missed(self, now: float) -> bool:
        """Whether the job's deadline is missed as of simulated time ``now``.

        A job misses when it finished after its deadline, or has not finished
        and its deadline already passed.
        """
        if self.finish_time is not None:
            return self.finish_time > self.absolute_deadline
        return now > self.absolute_deadline

    @property
    def response_time(self) -> Optional[float]:
        """Completion latency (finish - release), or ``None`` if unfinished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.release_time


@dataclass
class StageRecord:
    """Lifecycle of one stage instance within a job."""

    task_name: str
    job_index: int
    stage_index: int
    release_time: float
    virtual_deadline: float
    finish_time: Optional[float] = None
    context_id: Optional[int] = None
    priority: Optional[str] = None

    def missed(self, now: float) -> bool:
        """Whether the stage missed its virtual deadline as of ``now``."""
        if self.finish_time is not None:
            return self.finish_time > self.virtual_deadline
        return now > self.virtual_deadline


class MetricsCollector:
    """Collects job/stage records and derives the paper's two metrics.

    Parameters
    ----------
    warmup:
        Jobs *released* before ``warmup`` seconds are excluded from DMR and
        completions before ``warmup`` are excluded from FPS, so transients
        from an empty system do not bias steady-state numbers.
    """

    def __init__(self, warmup: float = 0.0) -> None:
        self.warmup = warmup
        self.jobs: List[JobRecord] = []
        self.stages: List[StageRecord] = []
        self._job_index: Dict[Tuple[str, int], JobRecord] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def job_released(
        self, task_name: str, job_index: int, release_time: float, deadline: float
    ) -> JobRecord:
        """Record a new job release and return its record."""
        record = JobRecord(
            task_name=task_name,
            job_index=job_index,
            release_time=release_time,
            absolute_deadline=deadline,
        )
        self.jobs.append(record)
        self._job_index[(task_name, job_index)] = record
        return record

    def job_completed(self, task_name: str, job_index: int, finish_time: float) -> None:
        """Record the completion of a previously released job."""
        key = (task_name, job_index)
        record = self._job_index.get(key)
        if record is None:
            raise KeyError(f"completion for unknown job {key}")
        if record.finish_time is not None:
            raise ValueError(f"job {key} completed twice")
        record.finish_time = finish_time

    def stage_released(
        self,
        task_name: str,
        job_index: int,
        stage_index: int,
        release_time: float,
        virtual_deadline: float,
    ) -> StageRecord:
        """Record a stage release and return its record."""
        record = StageRecord(
            task_name=task_name,
            job_index=job_index,
            stage_index=stage_index,
            release_time=release_time,
            virtual_deadline=virtual_deadline,
        )
        self.stages.append(record)
        return record

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def _measured_jobs(self, now: float) -> List[JobRecord]:
        """Jobs that count toward DMR at time ``now``.

        A job counts when it was released after warmup and its deadline has
        passed (so its outcome is decided).
        """
        return [
            job
            for job in self.jobs
            if job.release_time >= self.warmup and job.absolute_deadline <= now
        ]

    def total_fps(self, now: float) -> float:
        """Completed frames per second over the post-warmup window."""
        window = now - self.warmup
        if window <= 0.0:
            return 0.0
        completed = sum(
            1
            for job in self.jobs
            if job.finish_time is not None and self.warmup <= job.finish_time <= now
        )
        return completed / window

    def deadline_miss_rate(self, now: float) -> float:
        """Fraction of decided post-warmup jobs that missed their deadline."""
        jobs = self._measured_jobs(now)
        if not jobs:
            return 0.0
        missed = sum(1 for job in jobs if job.missed(now))
        return missed / len(jobs)

    def per_task_fps(self, now: float) -> Dict[str, float]:
        """Completed frames per second broken down by task."""
        window = now - self.warmup
        out: Dict[str, float] = {}
        if window <= 0.0:
            return out
        for job in self.jobs:
            if job.finish_time is not None and self.warmup <= job.finish_time <= now:
                out[job.task_name] = out.get(job.task_name, 0.0) + 1.0
        return {name: count / window for name, count in out.items()}

    def per_task_dmr(self, now: float) -> Dict[str, float]:
        """Deadline miss rate broken down by task."""
        counts: Dict[str, List[int]] = {}
        for job in self._measured_jobs(now):
            total_missed = counts.setdefault(job.task_name, [0, 0])
            total_missed[0] += 1
            if job.missed(now):
                total_missed[1] += 1
        return {
            name: missed / total for name, (total, missed) in counts.items()
        }

    def stage_miss_rate(self, now: float) -> float:
        """Fraction of decided stage instances that missed virtual deadlines."""
        decided = [
            s
            for s in self.stages
            if s.release_time >= self.warmup and s.virtual_deadline <= now
        ]
        if not decided:
            return 0.0
        return sum(1 for s in decided if s.missed(now)) / len(decided)

    def response_times(self) -> List[float]:
        """Response times of all completed post-warmup jobs, sorted."""
        values = [
            job.response_time
            for job in self.jobs
            if job.response_time is not None and job.release_time >= self.warmup
        ]
        return sorted(values)

    def response_time_percentile(self, fraction: float) -> Optional[float]:
        """Percentile (0..1) of completed-job response times, or ``None``."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        values = self.response_times()
        if not values:
            return None
        index = min(len(values) - 1, int(round(fraction * (len(values) - 1))))
        return values[index]

    def released_count(self) -> int:
        """Total jobs released (including during warmup)."""
        return len(self.jobs)

    def completed_count(self) -> int:
        """Total jobs completed (including during warmup)."""
        return sum(1 for job in self.jobs if job.finish_time is not None)

"""Deterministic discrete-event simulation engine.

The engine is a classic binary-heap event loop.  Two properties matter for
reproducing scheduler behaviour faithfully:

* **Determinism** — events scheduled for the same timestamp fire in the order
  they were scheduled (stable FIFO tie-breaking via a monotonically
  increasing sequence number).  Reruns of the same workload therefore produce
  bit-identical traces.
* **Cheap cancellation** — rate-based execution (SM shares change whenever a
  kernel starts or finishes) means provisional completion events are
  rescheduled constantly.  Cancelled events are tombstoned and skipped when
  popped instead of being removed from the heap, which keeps cancellation
  O(1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.clock import TIME_EPS, validate_time


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently.

    Examples: scheduling an event in the past, or running with a negative
    horizon.
    """


@dataclass
class Event:
    """Handle for a scheduled event.

    Instances are created by :meth:`SimulationEngine.schedule`; user code
    only ever cancels them or inspects their fields.

    Attributes
    ----------
    time:
        Absolute simulated time at which the action fires.
    seq:
        Engine-wide monotonically increasing sequence number; ties on
        ``time`` are broken by ``seq`` so the event order is deterministic.
    action:
        Zero-argument callable invoked when the event fires.
    tag:
        Free-form label used by traces and error messages.
    """

    time: float
    seq: int
    action: Callable[[], None]
    tag: str = ""
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimulationEngine:
    """Binary-heap discrete-event loop with deterministic tie-breaking.

    Parameters
    ----------
    start_time:
        Initial simulated time (seconds).  Defaults to 0.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(1.0, lambda: fired.append(engine.now), tag="tick")
    >>> engine.run()
    >>> fired
    [1.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = validate_time(start_time, "start_time")
        self._heap: List[Event] = []
        self._seq = 0
        self._processed = 0
        self._cancelled_pending = 0
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of scheduled events that have not fired or been cancelled."""
        return len(self._heap) - self._cancelled_pending

    @property
    def processed_count(self) -> int:
        """Number of events that have fired since construction."""
        return self._processed

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None`` if idle."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, action: Callable[[], None], tag: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now.

        ``delay`` may be zero (the event fires later in the current instant,
        after already-queued same-time events) but not negative.
        """
        if delay < -TIME_EPS:
            raise SimulationError(
                f"cannot schedule event {tag!r} with negative delay {delay}"
            )
        return self.schedule_at(self._now + max(delay, 0.0), action, tag)

    def schedule_at(
        self, when: float, action: Callable[[], None], tag: str = ""
    ) -> Event:
        """Schedule ``action`` at absolute simulated time ``when``."""
        validate_time(when, "when")
        if when < self._now - TIME_EPS:
            raise SimulationError(
                f"cannot schedule event {tag!r} at {when} before now={self._now}"
            )
        event = Event(time=max(when, self._now), seq=self._seq, action=action, tag=tag)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.  Idempotent."""
        if not event.cancelled:
            event.cancel()
            self._cancelled_pending += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next live event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        # Guard against clock regression: the heap invariant guarantees
        # event.time >= self._now up to scheduling-time validation.
        if event.time > self._now:
            self._now = event.time
        self._processed += 1
        event.action()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fired).

        Returns the number of events processed by this call.
        """
        fired = 0
        while max_events is None or fired < max_events:
            if not self.step():
                break
            fired += 1
        return fired

    def run_until(self, horizon: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= horizon`` then set the clock to ``horizon``.

        Events scheduled beyond the horizon remain queued.  Returns the number
        of events processed by this call.
        """
        validate_time(horizon, "horizon")
        if horizon < self._now - TIME_EPS:
            raise SimulationError(
                f"horizon {horizon} is before current time {self._now}"
            )
        fired = 0
        while max_events is None or fired < max_events:
            next_time = self.peek_time()
            if next_time is None or next_time > horizon + TIME_EPS:
                break
            self.step()
            fired += 1
        if horizon > self._now:
            self._now = horizon
        return fired

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_pending -= 1

"""Deterministic discrete-event simulation engine.

The engine is a classic binary-heap event loop.  Three properties matter for
reproducing scheduler behaviour faithfully at speed:

* **Determinism** — events scheduled for the same timestamp fire in the order
  they were scheduled (stable FIFO tie-breaking via a monotonically
  increasing sequence number).  Reruns of the same workload therefore produce
  bit-identical traces.  Heap compaction preserves this: the live events'
  ``(time, seq)`` keys are a total order, so a rebuilt heap pops in exactly
  the same order as the original.
* **Cheap cancellation** — rate-based execution re-arms provisional
  completion events whenever a kernel's rate changes.  Cancelled events are
  tombstoned and skipped when popped instead of being removed from the heap,
  which keeps :meth:`SimulationEngine.cancel` amortised O(1).  Cancellation
  goes through the engine whether it is invoked as ``engine.cancel(event)``
  or directly on the handle (``event.cancel()``), so the pending-event
  accounting can never drift.
* **Bounded tombstone debt** — whenever cancelled events outnumber live
  ones, the heap is rebuilt without the tombstones (an O(n) pass paid at
  most every n cancellations, so still amortised O(1) per cancel).  Without
  compaction a workload that cancels most of what it schedules — exactly
  what rate-based completion re-arming does — grows the heap without bound
  and pays an ever-larger ``log n`` on every push and pop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.clock import TIME_EPS, validate_time


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently.

    Examples: scheduling an event in the past, or running with a negative
    horizon.
    """


@dataclass
class Event:
    """Handle for a scheduled event.

    Instances are created by :meth:`SimulationEngine.schedule`; user code
    only ever cancels them or inspects their fields.

    Attributes
    ----------
    time:
        Absolute simulated time at which the action fires.
    seq:
        Engine-wide monotonically increasing sequence number; ties on
        ``time`` are broken by ``seq`` so the event order is deterministic.
    action:
        Zero-argument callable invoked when the event fires.
    tag:
        Free-form label used by traces and error messages.
    """

    time: float
    seq: int
    action: Callable[[], None]
    tag: str = ""
    cancelled: bool = field(default=False, compare=False)
    #: Set by the engine the moment the event is popped to fire; a fired
    #: event is no longer in the heap, so cancelling it must not touch the
    #: pending-tombstone accounting.
    fired: bool = field(default=False, compare=False)
    #: Back-reference to the owning engine so that cancelling through the
    #: handle keeps the engine's pending-event accounting exact.
    _engine: Optional["SimulationEngine"] = field(
        default=None, repr=False, compare=False
    )

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent.

        Routes through the owning engine (when there is one) so
        ``pending_count`` and the compaction heuristics stay exact; a
        detached handle just flips its flag.
        """
        if self._engine is not None:
            self._engine.cancel(self)
        else:
            self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimulationEngine:
    """Binary-heap discrete-event loop with deterministic tie-breaking.

    Parameters
    ----------
    start_time:
        Initial simulated time (seconds).  Defaults to 0.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(1.0, lambda: fired.append(engine.now), tag="tick")
    >>> engine.run()
    >>> fired
    [1.0]
    """

    #: Heaps smaller than this are never compacted: rebuilding a handful of
    #: events costs more bookkeeping than the tombstones it would reclaim.
    COMPACT_MIN_SIZE = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = validate_time(start_time, "start_time")
        self._heap: List[Event] = []
        self._seq = 0
        self._scheduled = 0
        self._processed = 0
        self._cancelled_pending = 0
        self._compactions = 0
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of scheduled events that have not fired or been cancelled."""
        return len(self._heap) - self._cancelled_pending

    @property
    def processed_count(self) -> int:
        """Number of events that have fired since construction."""
        return self._processed

    @property
    def scheduled_count(self) -> int:
        """Number of events ever pushed onto the heap (fired, pending or
        cancelled).

        The difference between two readings measures event churn — the
        quantity the incremental and vectorised device re-arming exist to
        minimise.  Order stamps burned by :meth:`allocate_seqs` without a
        matching push do not count: they are bookkeeping, not heap work.
        """
        return self._scheduled

    @property
    def compaction_count(self) -> int:
        """Number of tombstone-dropping heap rebuilds performed so far."""
        return self._compactions

    @property
    def heap_size(self) -> int:
        """Current physical heap length, tombstones included."""
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None`` if idle."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, action: Callable[[], None], tag: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now.

        ``delay`` may be zero (the event fires later in the current instant,
        after already-queued same-time events) but not negative.
        """
        if delay < -TIME_EPS:
            raise SimulationError(
                f"cannot schedule event {tag!r} with negative delay {delay}"
            )
        return self.schedule_at(self._now + max(delay, 0.0), action, tag)

    def schedule_at(
        self, when: float, action: Callable[[], None], tag: str = ""
    ) -> Event:
        """Schedule ``action`` at absolute simulated time ``when``."""
        validate_time(when, "when")
        if when < self._now - TIME_EPS:
            raise SimulationError(
                f"cannot schedule event {tag!r} at {when} before now={self._now}"
            )
        event = Event(
            time=max(when, self._now),
            seq=self._seq,
            action=action,
            tag=tag,
            _engine=self,
        )
        self._seq += 1
        self._scheduled += 1
        heapq.heappush(self._heap, event)
        return event

    def allocate_seqs(self, count: int) -> int:
        """Reserve ``count`` consecutive order stamps; return the first.

        The vectorised device keeps per-kernel completion order in a flat
        table instead of one heap event per kernel, but same-timestamp
        FIFO tie-breaking must stay bit-identical to the incremental mode,
        which consumes one sequence number per re-armed kernel.  Burning
        the same stamps here keeps every later event's tie-break position
        aligned across modes.  No heap work happens, so the reservation
        does not count towards :attr:`scheduled_count`.
        """
        if count < 0:
            raise SimulationError(f"cannot allocate {count} seqs")
        base = self._seq
        self._seq += count
        return base

    def schedule_at_seq(
        self, when: float, seq: int, action: Callable[[], None], tag: str = ""
    ) -> Event:
        """Schedule ``action`` at ``when`` with an explicit order stamp.

        ``seq`` must come from :meth:`allocate_seqs` (or be the stamp of a
        previously cancelled event being revived at the same position).
        Used by the vectorised device's completion sentinel: the single
        pending event carries the exact ``(time, seq)`` the incremental
        mode's next completion event would have, so pop order — and
        therefore traces — are bit-identical.
        """
        validate_time(when, "when")
        if when < self._now - TIME_EPS:
            raise SimulationError(
                f"cannot schedule event {tag!r} at {when} before now={self._now}"
            )
        if seq >= self._seq:
            raise SimulationError(
                f"event {tag!r} uses unallocated seq {seq} (next is {self._seq})"
            )
        event = Event(
            time=max(when, self._now),
            seq=seq,
            action=action,
            tag=tag,
            _engine=self,
        )
        self._scheduled += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.  Idempotent.

        Cancelling an event that already fired is a no-op: it is not in
        the heap any more, so it must not count as a pending tombstone.
        """
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._cancelled_pending += 1
        if (
            self._cancelled_pending * 2 > len(self._heap)
            and len(self._heap) >= self.COMPACT_MIN_SIZE
        ):
            self._compact()

    def reschedule(self, event: Event) -> Event:
        """Cancel ``event`` and re-push an identical copy, preserving its
        ``(time, seq)`` heap position.

        Exists for the device's reference re-arm-everything mode: the
        re-pushed event pays the same heap churn a fresh ``schedule_at``
        would (tombstone + push) but keeps the original FIFO tie-break, so
        same-timestamp event order — and therefore traces — stay
        bit-identical to the incremental mode that never touched the event.
        The churn still counts towards :attr:`scheduled_count`.
        """
        if event.cancelled or event.fired:
            raise SimulationError(
                f"cannot reschedule {'fired' if event.fired else 'cancelled'}"
                f" event {event.tag!r}"
            )
        self.cancel(event)
        copy = Event(
            time=event.time,
            seq=event.seq,
            action=event.action,
            tag=event.tag,
            _engine=self,
        )
        # count the churn; the fresh number is deliberately NOT used (the
        # copy keeps the original seq so its tie-break position is stable)
        self._seq += 1
        self._scheduled += 1
        heapq.heappush(self._heap, copy)
        return copy

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next live event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        event.fired = True
        # Guard against clock regression: the heap invariant guarantees
        # event.time >= self._now up to scheduling-time validation.
        if event.time > self._now:
            self._now = event.time
        self._processed += 1
        event.action()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fired).

        Returns the number of events processed by this call.
        """
        fired = 0
        while max_events is None or fired < max_events:
            if not self.step():
                break
            fired += 1
        return fired

    def run_until(self, horizon: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= horizon`` then set the clock to ``horizon``.

        The boundary is exact-or-under: an event even a fraction of
        ``TIME_EPS`` beyond the horizon stays queued, so the clock never has
        to rewind after firing it.  The clock only advances to ``horizon``
        once every sub-horizon event has fired — if ``max_events`` stops
        execution with live events still due, the clock stays at the last
        fired event so those events do not later run with a future
        timestamp.  Returns the number of events processed by this call.
        """
        validate_time(horizon, "horizon")
        if horizon < self._now - TIME_EPS:
            raise SimulationError(
                f"horizon {horizon} is before current time {self._now}"
            )
        fired = 0
        while max_events is None or fired < max_events:
            next_time = self.peek_time()
            if next_time is None or next_time > horizon:
                break
            self.step()
            fired += 1
        else:
            next_time = self.peek_time()
            if next_time is not None and next_time <= horizon:
                # stopped by max_events with due events still queued
                return fired
        if horizon > self._now:
            self._now = horizon
        return fired

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_pending -= 1

    def _compact(self) -> None:
        """Rebuild the heap without tombstones.

        Pop order is unchanged: heap order is fully determined by the
        ``(time, seq)`` comparison, a total order over live events.
        """
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self._compactions += 1

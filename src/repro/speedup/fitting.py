"""Fitting speedup curves to measured data.

Downstream users with real hardware can measure (SM count, speedup) points
— e.g. via MPS active-thread-percentage sweeps like the paper's Fig. 1 —
and fit the serial-fraction model so the simulator mirrors *their* device.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.speedup.model import SaturatingCurve


def fit_sigma(points: Sequence[Tuple[float, float]]) -> float:
    """Least-squares fit of the serial fraction to measured points.

    The model ``speedup = s / (1 + sigma*(s-1))`` rearranges to the linear
    relation ``s/speedup - 1 = sigma * (s - 1)``, so the least-squares
    sigma has the closed form ``sum(x*y) / sum(x*x)`` with
    ``x = s - 1`` and ``y = s/speedup - 1``.  Points at s=1 carry no
    information and are ignored; the result is clamped to [0, 1].

    Raises
    ------
    ValueError
        If fewer than one informative point (s > 1) is supplied, or any
        speedup is non-positive.
    """
    numerator = 0.0
    denominator = 0.0
    informative = 0
    for sms, speedup in points:
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        if sms <= 1.0:
            continue
        x = sms - 1.0
        y = sms / speedup - 1.0
        numerator += x * y
        denominator += x * x
        informative += 1
    if informative == 0:
        raise ValueError("need at least one measurement with sms > 1")
    sigma = numerator / denominator
    return min(max(sigma, 0.0), 1.0)


def fit_curve(points: Sequence[Tuple[float, float]]) -> SaturatingCurve:
    """Fit and return a :class:`SaturatingCurve`."""
    return SaturatingCurve(fit_sigma(points))


def fit_quality(
    curve: SaturatingCurve, points: Sequence[Tuple[float, float]]
) -> float:
    """Root-mean-square relative error of a curve against measurements."""
    if not points:
        raise ValueError("points must be non-empty")
    total = 0.0
    for sms, speedup in points:
        predicted = curve.speedup(sms)
        total += ((predicted - speedup) / speedup) ** 2
    return (total / len(points)) ** 0.5

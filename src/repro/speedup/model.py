"""Saturating speedup-curve primitives.

The paper's Fig. 1 shows per-operation speedup that rises steeply for the
first few SMs and then flattens.  We model each curve with the classic
*serial-fraction* (linear-overhead) law

    speedup(s) = s / (1 + sigma * (s - 1))

which satisfies speedup(1) = 1, is strictly increasing and concave, and
saturates toward ``1/sigma``.  ``sigma`` is fitted per operation type so the
curve passes through the paper's measured value at 68 SMs
(:func:`sigma_for_target`).

A second effect limits parallelism per *instance*: a kernel whose output has
few elements cannot occupy many SMs regardless of the operation type.
:class:`WidthLimitedCurve` clamps the SM count fed to an underlying curve.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple


class SpeedupCurve(Protocol):
    """Anything mapping an SM count to a speedup factor.

    Implementations must satisfy ``speedup(1) == 1`` (within float error)
    and be non-decreasing in ``sms``.
    """

    def speedup(self, sms: float) -> float:
        """Speedup at ``sms`` streaming multiprocessors (may be fractional)."""
        ...


def sigma_for_target(target_speedup: float, at_sms: float) -> float:
    """Serial fraction that makes the curve hit ``target_speedup`` at ``at_sms``.

    Solves ``at_sms / (1 + sigma*(at_sms-1)) == target_speedup``.

    Raises
    ------
    ValueError
        If the target is infeasible (< 1 or > at_sms).
    """
    if at_sms <= 1:
        raise ValueError(f"at_sms must exceed 1, got {at_sms}")
    if not 1.0 <= target_speedup <= at_sms:
        raise ValueError(
            f"target speedup {target_speedup} infeasible at {at_sms} SMs "
            f"(must lie in [1, {at_sms}])"
        )
    return (at_sms / target_speedup - 1.0) / (at_sms - 1.0)


@dataclass(frozen=True)
class SaturatingCurve:
    """Serial-fraction speedup law ``s / (1 + sigma*(s-1))``.

    Attributes
    ----------
    sigma:
        Serial fraction in [0, 1].  0 is perfect linear speedup; the curve
        saturates toward ``1/sigma``.
    """

    sigma: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.sigma <= 1.0:
            raise ValueError(f"sigma must be in [0, 1], got {self.sigma}")

    def speedup(self, sms: float) -> float:
        """Speedup at a (possibly fractional) SM count."""
        if sms <= 0.0:
            return 0.0
        if sms <= 1.0:
            # Sub-SM shares degrade linearly: half an SM does half the work.
            return sms
        return sms / (1.0 + self.sigma * (sms - 1.0))

    @property
    def asymptote(self) -> float:
        """Least upper bound of the curve (``1/sigma``; inf when sigma=0)."""
        if self.sigma == 0.0:
            return float("inf")
        return 1.0 / self.sigma

    def sms_for_fraction(self, fraction: float, reference_sms: float) -> float:
        """Smallest SM count reaching ``fraction`` of speedup at ``reference_sms``.

        Used to derive *width demands*: the SM count beyond which additional
        allocation is mostly wasted.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        target = fraction * self.speedup(reference_sms)
        if target <= 1.0:
            return target
        # Invert s / (1 + sigma*(s-1)) = target  =>
        # s * (1 - sigma*target) = target * (1 - sigma)
        denominator = 1.0 - self.sigma * target
        if denominator <= 0.0:
            return reference_sms
        return min(reference_sms, target * (1.0 - self.sigma) / denominator)


@dataclass(frozen=True)
class WidthLimitedCurve:
    """Clamp the SM count fed to an inner curve at a parallel-width limit.

    Models grid-size-limited kernels: an operator with W parallel work units
    gains nothing beyond ``width`` SMs.
    """

    inner: SaturatingCurve
    width: float

    def __post_init__(self) -> None:
        if self.width < 1.0:
            raise ValueError(f"width must be >= 1, got {self.width}")

    def speedup(self, sms: float) -> float:
        """Speedup with the SM count clamped at the width limit."""
        return self.inner.speedup(min(sms, self.width))


class TabulatedCurve:
    """Piecewise-linear curve through measured (sms, speedup) points.

    Used to replay measured curves (e.g. from the isolation harness) back
    into the model, and to let downstream users plug in their own hardware
    measurements.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        """Create from (sms, speedup) pairs; at least two, strictly
        increasing in sms, non-decreasing in speedup."""
        if len(points) < 2:
            raise ValueError("need at least two calibration points")
        ordered = sorted(points)
        sms_values = [p[0] for p in ordered]
        speedups = [p[1] for p in ordered]
        if any(b <= a for a, b in zip(sms_values, sms_values[1:])):
            raise ValueError("sms values must be strictly increasing")
        if any(b < a for a, b in zip(speedups, speedups[1:])):
            raise ValueError("speedup must be non-decreasing in sms")
        if any(s <= 0 for s in speedups):
            raise ValueError("speedups must be positive")
        self._sms: List[float] = sms_values
        self._speedup: List[float] = speedups

    def speedup(self, sms: float) -> float:
        """Linear interpolation, clamped at both ends."""
        if sms <= self._sms[0]:
            # Degrade proportionally below the first point.
            return self._speedup[0] * max(sms, 0.0) / self._sms[0]
        if sms >= self._sms[-1]:
            return self._speedup[-1]
        index = bisect.bisect_right(self._sms, sms)
        x0, x1 = self._sms[index - 1], self._sms[index]
        y0, y1 = self._speedup[index - 1], self._speedup[index]
        ratio = (sms - x0) / (x1 - x0)
        return y0 + ratio * (y1 - y0)

"""Isolation measurement harness (regenerates the paper's Fig. 1).

The paper measures per-operation speedup by running each operation in
isolation on partitions of 1..68 SMs.  This module does the analogous
experiment against the simulator's cost model: it evaluates operator
execution times at each SM count and reports speedup relative to one SM.

Measuring per *type* aggregates all instances of the type in the network
and reports the widest instance's curve (the paper benchmarks the
representative large kernels — e.g. the stem convolution — rather than the
grid-limited late layers).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Operator, OpType, output_elements
from repro.speedup.calibration import (
    DEFAULT_CALIBRATION,
    DeviceCalibration,
    operator_time_at,
)
from repro.speedup.composite import composite_for_ops


def default_sm_grid(total_sms: int) -> List[int]:
    """SM counts sampled by the Fig. 1 sweep: 1, 2, 4, ... up to the device."""
    grid = [1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64]
    return [s for s in grid if s < total_sms] + [total_sms]


def widest_instance(graph: LayerGraph, op_type: OpType) -> Optional[Operator]:
    """The instance of ``op_type`` with the largest output tensor.

    ``None`` when the network has no such operator.  Zero-cost marker nodes
    are skipped.
    """
    candidates = [
        op
        for op in graph
        if op.op_type is op_type and (op.flops > 0 or op.bytes_moved > 0)
    ]
    if not candidates:
        return None
    return max(candidates, key=output_elements)


def measure_operator_curve(
    op: Operator,
    sm_counts: Sequence[int],
    calibration: DeviceCalibration = DEFAULT_CALIBRATION,
) -> List[Tuple[int, float]]:
    """Speedup of one operator instance at each SM count, relative to 1 SM."""
    base = operator_time_at(op, 1, calibration)
    return [
        (sms, base / operator_time_at(op, sms, calibration)) for sms in sm_counts
    ]


def measure_op_speedups(
    graph: LayerGraph,
    sm_counts: Optional[Sequence[int]] = None,
    op_types: Optional[Iterable[OpType]] = None,
    calibration: DeviceCalibration = DEFAULT_CALIBRATION,
) -> Dict[OpType, List[Tuple[int, float]]]:
    """Fig. 1 sweep: per-type isolation speedup curves for one network.

    Parameters
    ----------
    graph:
        Network whose operators are benchmarked (the paper uses ResNet18).
    sm_counts:
        SM counts to sample; defaults to :func:`default_sm_grid`.
    op_types:
        Types to measure; defaults to every type present in the graph.

    Returns
    -------
    dict
        Type -> list of (sms, speedup) points for the widest instance.
    """
    if sm_counts is None:
        sm_counts = default_sm_grid(calibration.total_sms)
    if op_types is None:
        seen = []
        for op in graph:
            if op.op_type not in seen and (op.flops > 0 or op.bytes_moved > 0):
                seen.append(op.op_type)
        op_types = seen
    results: Dict[OpType, List[Tuple[int, float]]] = {}
    for op_type in op_types:
        instance = widest_instance(graph, op_type)
        if instance is None:
            continue
        results[op_type] = measure_operator_curve(instance, sm_counts, calibration)
    return results


def measure_network_speedup(
    graph: LayerGraph,
    sm_counts: Optional[Sequence[int]] = None,
    calibration: DeviceCalibration = DEFAULT_CALIBRATION,
) -> List[Tuple[int, float]]:
    """Whole-network isolation speedup curve (the ResNet18 line in Fig. 1)."""
    if sm_counts is None:
        sm_counts = default_sm_grid(calibration.total_sms)
    composite = composite_for_ops(graph.name, graph.topological_order(), calibration)
    return [(sms, composite.speedup(sms)) for sms in sm_counts]


def speedup_at(
    points: Sequence[Tuple[int, float]], sms: int
) -> float:
    """Look up the speedup at one SM count in a measured curve.

    Raises
    ------
    KeyError
        If the SM count was not sampled.
    """
    for point_sms, speedup in points:
        if point_sms == sms:
            return speedup
    raise KeyError(f"SM count {sms} not in measured curve")

"""GPU speedup modelling (the paper's Section III).

The paper characterises an RTX 2080 Ti by measuring, per operation type, the
speedup gained as a function of the number of SMs assigned (Fig. 1):
convolution peaks at ~32x on 68 SMs, max pooling at ~14x, every other
ResNet18 operation stays below 7x, and the full network reaches ~23x.

This package encodes that characterization:

* :mod:`repro.speedup.model` — saturating speedup curve primitives;
* :mod:`repro.speedup.calibration` — per-operation curve parameters and the
  single-SM baseline cost model, both calibrated to Fig. 1;
* :mod:`repro.speedup.composite` — composite curves for operator sequences
  (stages, whole networks);
* :mod:`repro.speedup.measure` — the isolation-measurement harness that
  regenerates Fig. 1 from the simulator.
"""

from repro.speedup.calibration import (
    DEFAULT_CALIBRATION,
    DeviceCalibration,
    operator_base_time,
    operator_curve,
    operator_width_limit,
)
from repro.speedup.composite import CompositeWorkload, composite_for_ops
from repro.speedup.fitting import fit_curve, fit_quality, fit_sigma
from repro.speedup.measure import measure_network_speedup, measure_op_speedups
from repro.speedup.model import (
    SaturatingCurve,
    SpeedupCurve,
    TabulatedCurve,
    WidthLimitedCurve,
    sigma_for_target,
)

__all__ = [
    "SpeedupCurve",
    "SaturatingCurve",
    "TabulatedCurve",
    "WidthLimitedCurve",
    "sigma_for_target",
    "DeviceCalibration",
    "DEFAULT_CALIBRATION",
    "operator_curve",
    "operator_base_time",
    "operator_width_limit",
    "CompositeWorkload",
    "composite_for_ops",
    "measure_op_speedups",
    "fit_sigma",
    "fit_curve",
    "fit_quality",
    "measure_network_speedup",
]

"""Calibrated cost model for the simulated RTX 2080 Ti.

Two ingredients turn an operator record into simulator time:

1. **Single-SM baseline time** ``t1(op)``: the roofline maximum of compute
   time (FLOPs over the per-SM throughput) and memory time (bytes over the
   single-SM achievable bandwidth), plus a fixed kernel-launch overhead that
   never parallelises.
2. **Speedup curve** per operation type, fitted so that at 68 SMs the curve
   reproduces the paper's Fig. 1 values (convolution 32x, max pooling 14x,
   everything else below 7x).

Constants below were tuned (see ``tests/speedup/test_calibration.py`` and
EXPERIMENTS.md) so the composite ResNet18 curve reaches ~23x at 68 SMs —
the paper's headline network-level number — and the absolute single-frame
latency on the full GPU lands in the few-millisecond range reported for
ResNet18 on this device class.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.dnn.ops import Operator, OpType
from repro.speedup.model import SaturatingCurve, WidthLimitedCurve, sigma_for_target

#: SM count of the paper's device; Fig. 1 targets are specified at this width.
REFERENCE_SMS = 68

#: Fig. 1 anchor points: *curve* speedup at 68 SMs per operation type.
#: Convolution and max pooling anchors sit slightly above the paper's
#: measured 32x / 14x because a measured curve also pays the constant
#: kernel-launch overhead; the anchors below make the *measured* isolation
#: speedups (see :mod:`repro.speedup.measure`) land on the paper's values.
#: The remaining types are placed so their measured speedups respect the
#: paper's "failed to exceed 7x" bound, ordered by arithmetic intensity.
FIG1_SPEEDUP_AT_68: Mapping[OpType, float] = {
    OpType.CONV2D: 33.0,
    OpType.MAXPOOL: 16.2,
    OpType.AVGPOOL: 6.8,
    OpType.BATCHNORM: 6.3,
    OpType.RELU: 5.7,
    OpType.ADD: 4.6,
    OpType.LINEAR: 3.5,
    OpType.SOFTMAX: 2.5,
    OpType.FLATTEN: 2.0,
}


@dataclass(frozen=True)
class DeviceCalibration:
    """Tunable constants of the simulated device.

    Attributes
    ----------
    name:
        Device label (cosmetic).
    total_sms:
        Physical SM count (68 for the RTX 2080 Ti).
    compute_rate_per_sm:
        Achieved FLOP/s of a single SM on DNN kernels.  ~55 GFLOP/s is
        ~28% of the 2080 Ti's per-SM FP32 peak, a typical achieved fraction
        for cuDNN convolutions.
    bandwidth_per_sm:
        Achievable DRAM bandwidth from a single SM's load/store streams.
    launch_overhead:
        Fixed per-kernel launch + sync latency; it never parallelises, so it
        is what drags the whole-network speedup (23x) below the convolution
        speedup (32x).
    elements_per_sm:
        Output elements one SM can process concurrently; limits the
        *parallel width* of small kernels (late ResNet layers, FC heads).
    speedup_targets:
        Fig. 1 anchors (speedup at 68 SMs) per operation type.
    """

    name: str = "rtx-2080-ti-sim"
    total_sms: int = 68
    compute_rate_per_sm: float = 55e9
    bandwidth_per_sm: float = 12e9
    launch_overhead: float = 3e-6
    elements_per_sm: float = 512.0
    speedup_targets: Mapping[OpType, float] = field(
        default_factory=lambda: dict(FIG1_SPEEDUP_AT_68)
    )

    def __post_init__(self) -> None:
        if self.total_sms < 2:
            raise ValueError(f"total_sms must be >= 2, got {self.total_sms}")
        if self.compute_rate_per_sm <= 0 or self.bandwidth_per_sm <= 0:
            raise ValueError("device rates must be positive")
        if self.launch_overhead < 0:
            raise ValueError("launch_overhead must be >= 0")
        if self.elements_per_sm <= 0:
            raise ValueError("elements_per_sm must be positive")
        for op_type, target in self.speedup_targets.items():
            if not 1.0 <= target <= self.total_sms:
                raise ValueError(
                    f"speedup target for {op_type} must be in "
                    f"[1, {self.total_sms}], got {target}"
                )

    def sigma(self, op_type: OpType) -> float:
        """Serial fraction of one operation type's curve."""
        return sigma_for_target(self.speedup_targets[op_type], self.total_sms)

    @property
    def fingerprint(self) -> tuple:
        """Hashable value identity of this calibration.

        Caches keyed by calibration must use this, never ``id()``: two
        calibrations with equal constants are interchangeable, and an
        ``id()`` can be recycled after garbage collection, silently
        serving one calibration's cached artifacts to another.
        """
        return (
            self.name,
            self.total_sms,
            self.compute_rate_per_sm,
            self.bandwidth_per_sm,
            self.launch_overhead,
            self.elements_per_sm,
            tuple(
                sorted(
                    (op_type.value, target)
                    for op_type, target in self.speedup_targets.items()
                )
            ),
        )

    @property
    def digest(self) -> str:
        """Hex digest of :attr:`fingerprint`, stable across processes.

        This is the form persisted in grid documents and distributed-run
        manifests (see :mod:`repro.exp.dist`): two sweeps may only be
        merged when their calibration digests agree, otherwise results
        computed under different cost models would silently mix.
        """
        blob = json.dumps(self.fingerprint, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


#: The calibration used throughout the reproduction.
DEFAULT_CALIBRATION = DeviceCalibration()

_CURVE_CACHE: Dict[tuple, Dict[OpType, SaturatingCurve]] = {}


def operator_curve(op_type: OpType, calibration: DeviceCalibration = DEFAULT_CALIBRATION) -> SaturatingCurve:
    """Type-level speedup curve (no instance width limit)."""
    cache = _CURVE_CACHE.setdefault(calibration.fingerprint, {})
    if op_type not in cache:
        cache[op_type] = SaturatingCurve(calibration.sigma(op_type))
    return cache[op_type]


def operator_width_limit(
    op: Operator, calibration: DeviceCalibration = DEFAULT_CALIBRATION
) -> float:
    """Parallel-width limit of one operator *instance*.

    A kernel processing W elements occupies at most
    ``W / elements_per_sm`` SMs; below one SM the limit clamps to 1 (the
    kernel still owns a whole SM while running).  The larger of the input
    and output tensors governs: reduction kernels (pooling, linear layers)
    parallelise over their *input*.
    """
    from repro.dnn.shapes import element_count

    elements = max(element_count(op.input_shape), element_count(op.output_shape))
    width = elements / calibration.elements_per_sm
    return max(1.0, min(float(calibration.total_sms), width))


def instance_curve(
    op: Operator, calibration: DeviceCalibration = DEFAULT_CALIBRATION
) -> WidthLimitedCurve:
    """Speedup curve of one operator instance (type curve + width limit)."""
    return WidthLimitedCurve(
        inner=operator_curve(op.op_type, calibration),
        width=operator_width_limit(op, calibration),
    )


def operator_work_time(
    op: Operator, calibration: DeviceCalibration = DEFAULT_CALIBRATION
) -> float:
    """Parallelisable single-SM work time of one operator (seconds).

    Roofline: the larger of compute time and memory time at one SM.
    Excludes the launch overhead, which is handled separately because it
    does not shrink with more SMs.
    """
    compute_time = op.flops / calibration.compute_rate_per_sm
    memory_time = op.bytes_moved / calibration.bandwidth_per_sm
    return max(compute_time, memory_time)


def operator_base_time(
    op: Operator, calibration: DeviceCalibration = DEFAULT_CALIBRATION
) -> float:
    """Total single-SM execution time of one operator (seconds)."""
    return calibration.launch_overhead + operator_work_time(op, calibration)


def operator_time_at(
    op: Operator, sms: float, calibration: DeviceCalibration = DEFAULT_CALIBRATION
) -> float:
    """Execution time of one operator at an SM share (seconds)."""
    if sms <= 0:
        raise ValueError(f"sms must be positive, got {sms}")
    curve = instance_curve(op, calibration)
    return calibration.launch_overhead + operator_work_time(op, calibration) / max(
        curve.speedup(sms), 1e-12
    )

"""Composite speedup curves for operator sequences.

A *stage* (and the whole network) executes its operators back to back on
whatever SM share it currently holds.  Its wall time at share ``s`` is

    T(s) = sum_op [ launch_overhead + work_op / speedup_op(s) ]

and its composite speedup is ``T(1) / T(s)``.  The scheduler's
discrete-event simulation runs one kernel per stage whose progress rate at
share ``s`` is exactly this composite speedup, so operator-mix effects (the
reason ResNet18 only reaches ~23x while convolution alone reaches 32x) are
preserved without simulating every operator launch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.dnn.ops import Operator
from repro.speedup.calibration import (
    DEFAULT_CALIBRATION,
    DeviceCalibration,
    instance_curve,
    operator_work_time,
)
from repro.speedup.model import WidthLimitedCurve


@dataclass(frozen=True)
class CompositeWorkload:
    """Aggregated cost model of an operator sequence.

    Satisfies the :class:`~repro.speedup.model.SpeedupCurve` protocol via
    :meth:`speedup`, so stage kernels can use it directly as their rate
    curve.

    Attributes
    ----------
    name:
        Label (stage or network name).
    segments:
        ``(work_time_at_1_sm, curve)`` pairs, one per operator.
    overhead:
        Total serial (non-parallelisable) time: launch overheads.
    """

    name: str
    segments: Tuple[Tuple[float, WidthLimitedCurve], ...]
    overhead: float

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError(f"composite {self.name!r} has no segments")
        if self.overhead < 0:
            raise ValueError(f"composite {self.name!r} has negative overhead")
        if any(work < 0 for work, _ in self.segments):
            raise ValueError(f"composite {self.name!r} has negative work")

    # ------------------------------------------------------------------
    # Time model
    # ------------------------------------------------------------------
    def time_at(self, sms: float) -> float:
        """Wall time (seconds) of the whole sequence at SM share ``sms``."""
        if sms <= 0:
            raise ValueError(f"sms must be positive, got {sms}")
        total = self.overhead
        for work, curve in self.segments:
            total += work / max(curve.speedup(sms), 1e-12)
        return total

    @property
    def base_time(self) -> float:
        """Wall time at a single SM (the WCET baseline)."""
        return self.time_at(1.0)

    @property
    def total_work(self) -> float:
        """Parallelisable work in single-SM seconds (excludes overhead)."""
        return sum(work for work, _ in self.segments)

    def speedup(self, sms: float) -> float:
        """Composite speedup ``T(1)/T(s)``; 0 below a zero share."""
        if sms <= 0:
            return 0.0
        return self.base_time / self.time_at(sms)

    # ------------------------------------------------------------------
    # Width demand
    # ------------------------------------------------------------------
    def width_demand(self, total_sms: float, fraction: float = 0.9) -> float:
        """SM count at which the composite reaches ``fraction`` of its
        speedup at ``total_sms``.

        This is the *useful width* of the stage: granting more SMs than this
        buys less than ``1 - fraction`` extra speedup, so the allocator
        treats it as the stage's demand.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        target = fraction * self.speedup(total_sms)
        low, high = 1.0, float(total_sms)
        if self.speedup(low) >= target:
            return low
        # Bisection: speedup is monotone in sms.
        for _ in range(60):
            mid = 0.5 * (low + high)
            if self.speedup(mid) >= target:
                high = mid
            else:
                low = mid
        return high


def composite_for_ops(
    name: str,
    ops: Sequence[Operator],
    calibration: DeviceCalibration = DEFAULT_CALIBRATION,
) -> CompositeWorkload:
    """Build the composite workload of an operator sequence.

    Zero-work marker operators (the synthetic graph input) contribute
    neither work nor launch overhead.
    """
    segments: List[Tuple[float, WidthLimitedCurve]] = []
    overhead = 0.0
    for op in ops:
        work = operator_work_time(op, calibration)
        if work <= 0.0 and op.bytes_moved == 0.0:
            continue  # synthetic marker node
        segments.append((work, instance_curve(op, calibration)))
        overhead += calibration.launch_overhead
    if not segments:
        raise ValueError(f"operator sequence {name!r} contains no real work")
    return CompositeWorkload(name=name, segments=tuple(segments), overhead=overhead)

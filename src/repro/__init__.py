"""SGPRS reproduction: Seamless GPU Partitioning Real-Time Scheduler.

Full reproduction of Babaei & Chantem, DATE 2024 (arXiv:2406.09425) on a
calibrated discrete-event GPU simulator.  See README.md for a tour and
DESIGN.md for the architecture.
"""

from repro.core import (
    ContextPoolConfig,
    NaiveScheduler,
    RunConfig,
    RunResult,
    SgprsScheduler,
    StageSpec,
    TaskSet,
    TaskSpec,
    prepare_task,
    run_simulation,
)
from repro.dnn import build_mlp, build_resnet18, build_resnet34, build_simple_cnn
from repro.gpu import RTX_2080_TI, GpuDeviceSpec
from repro.speedup import DEFAULT_CALIBRATION, DeviceCalibration
from repro.workloads import (
    SCENARIO_1,
    SCENARIO_2,
    identical_periodic_tasks,
    mixed_task_set,
    run_scenario_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "TaskSpec",
    "StageSpec",
    "TaskSet",
    "prepare_task",
    "ContextPoolConfig",
    "SgprsScheduler",
    "NaiveScheduler",
    "RunConfig",
    "RunResult",
    "run_simulation",
    "build_resnet18",
    "build_resnet34",
    "build_simple_cnn",
    "build_mlp",
    "GpuDeviceSpec",
    "RTX_2080_TI",
    "DeviceCalibration",
    "DEFAULT_CALIBRATION",
    "identical_periodic_tasks",
    "mixed_task_set",
    "SCENARIO_1",
    "SCENARIO_2",
    "run_scenario_sweep",
]

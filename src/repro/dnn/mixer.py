"""Tiny MLP-Mixer-style network builder (transformer-ish cost profile).

A Mixer block alternates *token mixing* (a linear layer across the patch
axis, applied per channel) and *channel mixing* (a linear layer across the
channel axis, applied per patch), each wrapped in a residual connection.
Activations are carried as a flat ``(patches * dim,)`` vector; the mixing
operators are built directly with the analytically correct FLOP/byte
counts (``2·N²·d`` for token mixing, ``2·d²·N`` for channel mixing), which
a naive dense ``(N·d) x (N·d)`` linear would overstate by orders of
magnitude.

This gives the model zoo a third cost shape: all-LINEAR/ADD work with no
convolutions, i.e. poor per-kernel GPU scaling (the paper's Fig. 1 caps
linear layers below 7x) and heavy residual traffic.

Example
-------
>>> from repro.dnn.mixer import build_mlp_mixer
>>> graph = build_mlp_mixer(num_patches=16, dim=64, depth=2)
>>> graph.name
'mlp_mixer'
"""

from __future__ import annotations

from repro.dnn import flops as F
from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Operator, OpType
from repro.dnn.resnet import _Builder


def _mixing_linear(
    builder: _Builder, name: str, flops: float, params: int
) -> None:
    """A shape-preserving mixing layer with explicit cost accounting."""
    shape = builder.shape
    elements = shape[0]
    bytes_moved = F.DTYPE_BYTES * (2.0 * elements + params)
    builder._attach(
        Operator(
            name=name,
            op_type=OpType.LINEAR,
            input_shape=shape,
            output_shape=shape,
            flops=flops,
            bytes_moved=bytes_moved,
            params=params,
        )
    )


def build_mlp_mixer(
    num_patches: int = 64,
    dim: int = 128,
    depth: int = 4,
    num_classes: int = 10,
    name: str = "mlp_mixer",
) -> LayerGraph:
    """An MLP-Mixer chain: ``depth`` token/channel mixing blocks + head.

    Each block is token-mix -> ReLU -> residual add -> channel-mix -> ReLU
    -> residual add; the head average-pools over patches and classifies.
    At the defaults this is a few tens of MFLOPs — far below ResNet18 —
    but composed entirely of LINEAR/ADD kernels that scale poorly with
    SMs, so it stresses the scheduler very differently per FLOP.
    """
    if num_patches < 2 or dim < 2:
        raise ValueError("num_patches and dim must be >= 2")
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    graph = LayerGraph(name)
    input_shape = (num_patches * dim,)
    graph.add_node(
        Operator(
            name="input",
            op_type=OpType.FLATTEN,
            input_shape=input_shape,
            output_shape=input_shape,
            flops=0.0,
            bytes_moved=0.0,
        )
    )
    builder = _Builder(graph, "input", input_shape)
    for block in range(depth):
        prefix = f"block{block}"
        skip_head, skip_shape = builder.head, builder.shape
        _mixing_linear(
            builder,
            f"{prefix}.token_mix",
            flops=2.0 * num_patches * num_patches * dim,
            params=num_patches * num_patches,
        )
        builder.relu(f"{prefix}.token_relu")
        builder.add(f"{prefix}.token_add", skip_head, skip_shape)
        skip_head, skip_shape = builder.head, builder.shape
        _mixing_linear(
            builder,
            f"{prefix}.channel_mix",
            flops=2.0 * dim * dim * num_patches,
            params=dim * dim,
        )
        builder.relu(f"{prefix}.channel_relu")
        builder.add(f"{prefix}.channel_add", skip_head, skip_shape)

    # Head: mean over patches, then classify.
    pooled_shape = (dim,)
    builder._attach(
        Operator(
            name="patch_pool",
            op_type=OpType.AVGPOOL,
            input_shape=builder.shape,
            output_shape=pooled_shape,
            flops=float(num_patches * dim),
            bytes_moved=F.DTYPE_BYTES * (num_patches * dim + dim),
        )
    )
    builder.linear("head", num_classes)
    shape = builder.shape
    builder._attach(
        Operator(
            name="softmax",
            op_type=OpType.SOFTMAX,
            input_shape=shape,
            output_shape=shape,
            flops=F.softmax_flops(shape[0]),
            bytes_moved=F.softmax_bytes(shape[0]),
        )
    )
    graph.validate()
    return graph

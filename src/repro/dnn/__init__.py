"""DNN substrate: operator-level network graphs and cost models.

The paper schedules DNN inference tasks whose structure is a DAG of
*stages*, each stage being a contiguous slice of the network's operators.
This package provides everything needed to express those networks without a
deep-learning framework:

* :mod:`repro.dnn.ops` — operator records (type, shapes, FLOPs, bytes);
* :mod:`repro.dnn.shapes` — convolution/pooling shape arithmetic;
* :mod:`repro.dnn.flops` — FLOP and memory-traffic formulas per operator;
* :mod:`repro.dnn.graph` — a small deterministic DAG container;
* :mod:`repro.dnn.resnet` — ResNet-18/34 builders (the paper's benchmark);
* :mod:`repro.dnn.models` — auxiliary small networks for tests/examples;
* :mod:`repro.dnn.mobilenet` — depthwise-separable MobileNet-style builder;
* :mod:`repro.dnn.mixer` — tiny MLP-Mixer chain (transformer-ish profile);
* :mod:`repro.dnn.stages` — balanced partitioning of a network into stages.
"""

from repro.dnn.graph import LayerGraph
from repro.dnn.mixer import build_mlp_mixer
from repro.dnn.mobilenet import build_mobilenet_small
from repro.dnn.models import build_mlp, build_simple_cnn, build_vgg11
from repro.dnn.ops import Operator, OpType
from repro.dnn.resnet import build_resnet18, build_resnet34
from repro.dnn.stages import StagePlan, partition_into_stages

__all__ = [
    "OpType",
    "Operator",
    "LayerGraph",
    "build_resnet18",
    "build_resnet34",
    "build_simple_cnn",
    "build_vgg11",
    "build_mlp",
    "build_mobilenet_small",
    "build_mlp_mixer",
    "StagePlan",
    "partition_into_stages",
]

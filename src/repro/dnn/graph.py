"""A small deterministic DAG container for network graphs.

Deliberately minimal: insertion-ordered nodes, Kahn topological sort with
insertion-order tie-breaking (so every traversal is reproducible), and the
structural validation the stage partitioner relies on.  ``networkx`` is
available in this environment but a bespoke container keeps the dependency
surface small and the iteration order contractually deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.dnn.ops import Operator


class GraphError(ValueError):
    """Raised on structurally invalid graph operations."""


class LayerGraph:
    """Directed acyclic graph of :class:`~repro.dnn.ops.Operator` nodes.

    Nodes are keyed by operator name.  Edges represent data dependencies:
    ``add_edge(a, b)`` means operator ``b`` consumes ``a``'s output.

    The graph also remembers its construction order, which for all builders
    in :mod:`repro.dnn.resnet` is a valid topological order with residual
    skip edges pointing forward; the stage partitioner cuts this order into
    contiguous intervals.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._nodes: Dict[str, Operator] = {}
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, op: Operator) -> Operator:
        """Add an operator node; names must be unique."""
        if op.name in self._nodes:
            raise GraphError(f"duplicate operator name {op.name!r}")
        self._nodes[op.name] = op
        self._succ[op.name] = []
        self._pred[op.name] = []
        return op

    def add_edge(self, src: str, dst: str) -> None:
        """Add a data dependency ``src -> dst``."""
        if src not in self._nodes:
            raise GraphError(f"unknown source node {src!r}")
        if dst not in self._nodes:
            raise GraphError(f"unknown destination node {dst!r}")
        if src == dst:
            raise GraphError(f"self-loop on {src!r}")
        if dst in self._succ[src]:
            raise GraphError(f"duplicate edge {src!r} -> {dst!r}")
        self._succ[src].append(dst)
        self._pred[dst].append(src)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __iter__(self) -> Iterator[Operator]:
        """Iterate operators in insertion order."""
        return iter(self._nodes.values())

    def node(self, name: str) -> Operator:
        """Look up an operator by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    def nodes(self) -> List[Operator]:
        """All operators in insertion order."""
        return list(self._nodes.values())

    def edges(self) -> List[Tuple[str, str]]:
        """All edges in deterministic order."""
        return [(src, dst) for src in self._nodes for dst in self._succ[src]]

    def successors(self, name: str) -> List[str]:
        """Names of nodes consuming ``name``'s output."""
        self.node(name)
        return list(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        """Names of nodes ``name`` consumes from."""
        self.node(name)
        return list(self._pred[name])

    def sources(self) -> List[str]:
        """Nodes with no predecessors, in insertion order."""
        return [n for n in self._nodes if not self._pred[n]]

    def sinks(self) -> List[str]:
        """Nodes with no successors, in insertion order."""
        return [n for n in self._nodes if not self._succ[n]]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_flops(self) -> float:
        """Sum of FLOPs over all operators."""
        return sum(op.flops for op in self._nodes.values())

    def total_bytes(self) -> float:
        """Sum of modelled DRAM traffic over all operators."""
        return sum(op.bytes_moved for op in self._nodes.values())

    def total_params(self) -> int:
        """Sum of parameter counts over all operators."""
        return sum(op.params for op in self._nodes.values())

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Operator]:
        """Kahn topological sort with insertion-order tie-breaking.

        Raises
        ------
        GraphError
            If the graph contains a cycle.
        """
        in_degree = {name: len(self._pred[name]) for name in self._nodes}
        ready = [name for name in self._nodes if in_degree[name] == 0]
        order: List[Operator] = []
        # `ready` is kept sorted by insertion index for determinism.
        insertion_index = {name: i for i, name in enumerate(self._nodes)}
        while ready:
            ready.sort(key=insertion_index.__getitem__)
            current = ready.pop(0)
            order.append(self._nodes[current])
            for succ in self._succ[current]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Check the graph is a connected DAG with one source and one sink.

        Network graphs built by this package are inference pipelines: a
        single input image flows to a single classification output.

        Raises
        ------
        GraphError
            On cycles, multiple sources/sinks, or disconnected nodes.
        """
        if not self._nodes:
            raise GraphError(f"graph {self.name!r} is empty")
        self.topological_order()  # raises on cycles
        sources = self.sources()
        sinks = self.sinks()
        if len(sources) != 1:
            raise GraphError(f"graph {self.name!r} has {len(sources)} sources")
        if len(sinks) != 1:
            raise GraphError(f"graph {self.name!r} has {len(sinks)} sinks")
        reachable = self._reachable_from(sources[0])
        if len(reachable) != len(self._nodes):
            missing = sorted(set(self._nodes) - reachable)
            raise GraphError(
                f"graph {self.name!r} has unreachable nodes: {missing[:5]}"
            )

    def insertion_order_is_topological(self) -> bool:
        """Whether every edge points forward in insertion order."""
        index = {name: i for i, name in enumerate(self._nodes)}
        return all(index[src] < index[dst] for src, dst in self.edges())

    def _reachable_from(self, start: str) -> Set[str]:
        seen: Set[str] = set()
        frontier = [start]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._succ[current])
        return seen

"""MobileNet-style depthwise-separable network builder.

The synthesis subsystem's model zoo needs real dynamic range in FLOPs and
stage shapes, not just ResNet variants.  ``build_mobilenet_small`` is a
MobileNetV1-flavoured chain of depthwise-separable blocks (depthwise 3x3
+ pointwise 1x1, each with BN + ReLU): roughly an order of magnitude
fewer FLOPs than ResNet18 at its default 160x160 input, with many small
memory-bound kernels — the opposite cost profile of the paper's
convolution-dominated benchmark.

Example
-------
>>> from repro.dnn.mobilenet import build_mobilenet_small
>>> graph = build_mobilenet_small()
>>> graph.name
'mobilenet_small'
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Operator, OpType
from repro.dnn.resnet import _Builder

#: (out_channels, stride) of each depthwise-separable block.
_SMALL_LAYOUT: Tuple[Tuple[int, int], ...] = (
    (24, 1),
    (48, 2),
    (48, 1),
    (96, 2),
    (96, 1),
    (160, 2),
    (160, 1),
    (320, 2),
)


def _separable_block(
    builder: _Builder, prefix: str, out_channels: int, stride: int
) -> None:
    """Depthwise 3x3 + pointwise 1x1, each followed by BN + ReLU."""
    builder.depthwise_conv(f"{prefix}.dw", kernel=3, stride=stride, padding=1)
    builder.batchnorm(f"{prefix}.dw_bn")
    builder.relu(f"{prefix}.dw_relu")
    builder.conv(f"{prefix}.pw", out_channels, kernel=1)
    builder.batchnorm(f"{prefix}.pw_bn")
    builder.relu(f"{prefix}.pw_relu")


def build_mobilenet_small(
    input_hw: int = 160,
    num_classes: int = 1000,
    width_mult: float = 1.0,
    layout: Sequence[Tuple[int, int]] = _SMALL_LAYOUT,
    name: str = "mobilenet_small",
) -> LayerGraph:
    """A compact depthwise-separable CNN as an operator graph.

    ~0.2 GFLOPs at the default 160x160 input — roughly 10x lighter than
    ResNet18 — dominated by cheap memory-bound kernels, so its composite
    speedup curve saturates far earlier than ResNet's.  ``width_mult``
    scales every channel count (MobileNet's width multiplier).
    """
    if width_mult <= 0:
        raise ValueError(f"width_mult must be positive, got {width_mult}")
    graph = LayerGraph(name)
    input_shape = (3, input_hw, input_hw)
    graph.add_node(
        Operator(
            name="input",
            op_type=OpType.FLATTEN,
            input_shape=input_shape,
            output_shape=input_shape,
            flops=0.0,
            bytes_moved=0.0,
        )
    )
    builder = _Builder(graph, "input", input_shape)

    def scaled(channels: int) -> int:
        return max(8, int(round(channels * width_mult)))

    # Stem: dense 3x3/2 convolution into the first channel width.
    builder.conv("stem", scaled(16), kernel=3, stride=2, padding=1)
    builder.batchnorm("stem_bn")
    builder.relu("stem_relu")
    for index, (out_channels, stride) in enumerate(layout):
        _separable_block(builder, f"block{index}", scaled(out_channels), stride)
    builder.global_avgpool("avgpool")
    builder.flatten("flatten")
    builder.linear("fc", num_classes)
    graph.validate()
    return graph

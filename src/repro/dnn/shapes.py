"""Shape arithmetic for convolution and pooling operators.

All shapes are channels-first without a batch dimension: ``(C, H, W)`` for
feature maps and ``(N,)`` for flattened vectors.  Inference batch size is 1
throughout the paper (one camera frame per job).
"""

from __future__ import annotations

from typing import Tuple

Shape3 = Tuple[int, int, int]


def conv2d_output_hw(
    height: int, width: int, kernel: int, stride: int = 1, padding: int = 0
) -> Tuple[int, int]:
    """Output spatial size of a square-kernel convolution.

    Uses the standard floor formula ``(size + 2*pad - kernel) // stride + 1``.

    Raises
    ------
    ValueError
        If the kernel does not fit in the padded input.
    """
    if kernel <= 0 or stride <= 0:
        raise ValueError(f"kernel and stride must be positive, got {kernel}, {stride}")
    if padding < 0:
        raise ValueError(f"padding must be >= 0, got {padding}")
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel} (stride {stride}, padding {padding}) does not fit "
            f"input {height}x{width}"
        )
    return out_h, out_w


def conv2d_output_shape(
    input_shape: Shape3,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> Shape3:
    """Output shape ``(out_channels, H_out, W_out)`` of a convolution."""
    if out_channels <= 0:
        raise ValueError(f"out_channels must be positive, got {out_channels}")
    _, height, width = input_shape
    out_h, out_w = conv2d_output_hw(height, width, kernel, stride, padding)
    return (out_channels, out_h, out_w)


def pool_output_shape(
    input_shape: Shape3, kernel: int, stride: int, padding: int = 0
) -> Shape3:
    """Output shape of a max/avg pooling layer (channel-preserving)."""
    channels, height, width = input_shape
    out_h, out_w = conv2d_output_hw(height, width, kernel, stride, padding)
    return (channels, out_h, out_w)


def global_pool_output_shape(input_shape: Shape3) -> Shape3:
    """Output shape of global average pooling: ``(C, 1, 1)``."""
    channels = input_shape[0]
    return (channels, 1, 1)


def flatten_shape(input_shape: Tuple[int, ...]) -> Tuple[int]:
    """Collapse any shape into a vector shape."""
    count = 1
    for dim in input_shape:
        count *= dim
    return (count,)


def element_count(shape: Tuple[int, ...]) -> int:
    """Number of elements in a tensor of ``shape``."""
    count = 1
    for dim in shape:
        count *= dim
    return count

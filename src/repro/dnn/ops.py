"""Operator records.

Each network node is an :class:`Operator`: an immutable description of one
GPU kernel launch (type, tensor shapes, arithmetic work, memory traffic).
The speedup package attaches per-type scaling curves to these records; the
GPU simulator never looks inside them beyond ``flops``/``bytes``/``op_type``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

Shape = Tuple[int, ...]


class OpType(enum.Enum):
    """Operator categories measured by the paper's Fig. 1.

    The paper reports per-operation speedup-vs-SMs for the operations that
    appear in ResNet18; convolution dominates, max pooling is second, and
    "other operations failed to exceed 7x".
    """

    CONV2D = "conv2d"
    MAXPOOL = "maxpool"
    AVGPOOL = "avgpool"
    RELU = "relu"
    BATCHNORM = "batchnorm"
    ADD = "add"
    LINEAR = "linear"
    FLATTEN = "flatten"
    SOFTMAX = "softmax"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Operator types whose runtime is dominated by memory traffic rather than
#: arithmetic at batch size 1.  LINEAR is included: a batch-1 fully
#: connected layer streams every weight once for two FLOPs per weight.
MEMORY_BOUND_TYPES = frozenset(
    {
        OpType.MAXPOOL,
        OpType.AVGPOOL,
        OpType.RELU,
        OpType.BATCHNORM,
        OpType.ADD,
        OpType.LINEAR,
        OpType.FLATTEN,
        OpType.SOFTMAX,
    }
)


@dataclass(frozen=True)
class Operator:
    """One network operator (= one simulated kernel launch).

    Attributes
    ----------
    name:
        Unique name within the network, e.g. ``"layer2.0.conv1"``.
    op_type:
        Category used to select the speedup curve.
    input_shape / output_shape:
        Activation shapes (channels-first, no batch dimension).
    flops:
        Floating-point operations for one inference (multiply-accumulate
        counted as two operations, matching common practice).
    bytes_moved:
        DRAM traffic in bytes (activations + parameters, reads + writes).
    params:
        Parameter count (weights + biases), informational.
    """

    name: str
    op_type: OpType
    input_shape: Shape
    output_shape: Shape
    flops: float
    bytes_moved: float
    params: int = 0
    attributes: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operator name must be non-empty")
        if self.flops < 0:
            raise ValueError(f"{self.name}: flops must be >= 0, got {self.flops}")
        if self.bytes_moved < 0:
            raise ValueError(
                f"{self.name}: bytes_moved must be >= 0, got {self.bytes_moved}"
            )
        for shape in (self.input_shape, self.output_shape):
            if any(d <= 0 for d in shape):
                raise ValueError(f"{self.name}: shape dims must be positive: {shape}")

    @property
    def is_memory_bound(self) -> bool:
        """Whether this operator's runtime is modelled as bandwidth-bound."""
        return self.op_type in MEMORY_BOUND_TYPES

    def attribute(self, key: str, default: Optional[object] = None) -> object:
        """Look up an auxiliary attribute (kernel size, stride, ...)."""
        for k, v in self.attributes:
            if k == key:
                return v
        return default


def output_elements(op: Operator) -> int:
    """Number of elements in the operator's output tensor."""
    count = 1
    for dim in op.output_shape:
        count *= dim
    return count

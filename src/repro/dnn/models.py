"""Auxiliary networks for tests and examples.

``build_simple_cnn`` / ``build_mlp`` are smaller than ResNet18 so unit
tests stay fast; ``build_vgg11`` is substantially *heavier*, giving the
examples a workload mix with real dynamic range.
"""

from __future__ import annotations

from repro.dnn import flops as F
from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Operator, OpType
from repro.dnn.resnet import _Builder


def build_simple_cnn(
    input_hw: int = 32, num_classes: int = 10, name: str = "simple_cnn"
) -> LayerGraph:
    """A LeNet-style chain: 2x (conv + BN + ReLU + maxpool) + FC head.

    Useful as a cheap stand-in for a "small camera pipeline" task.
    """
    graph = LayerGraph(name)
    input_shape = (3, input_hw, input_hw)
    graph.add_node(
        Operator(
            name="input",
            op_type=OpType.FLATTEN,
            input_shape=input_shape,
            output_shape=input_shape,
            flops=0.0,
            bytes_moved=0.0,
        )
    )
    builder = _Builder(graph, "input", input_shape)
    builder.conv("conv1", out_channels=16, kernel=3, stride=1, padding=1)
    builder.batchnorm("bn1")
    builder.relu("relu1")
    builder.maxpool("pool1", kernel=2, stride=2)
    builder.conv("conv2", out_channels=32, kernel=3, stride=1, padding=1)
    builder.batchnorm("bn2")
    builder.relu("relu2")
    builder.maxpool("pool2", kernel=2, stride=2)
    builder.flatten("flatten")
    builder.linear("fc1", 128)
    builder.relu("relu3")
    builder.linear("fc2", num_classes)
    graph.validate()
    return graph


#: VGG-11 ('A' configuration): channel counts with 'M' marking max-pools.
_VGG11_LAYOUT = (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M")


def build_vgg11(
    input_hw: int = 224, num_classes: int = 1000, name: str = "vgg11"
) -> LayerGraph:
    """VGG-11 (Simonyan & Zisserman 'A' config) as an operator graph.

    ~15.2 GFLOPs at 224x224 — roughly 4x ResNet18 — with a conv-dominated
    profile and a huge fully connected head, exercising the memory-bound
    linear cost path at scale.
    """
    graph = LayerGraph(name)
    input_shape = (3, input_hw, input_hw)
    graph.add_node(
        Operator(
            name="input",
            op_type=OpType.FLATTEN,
            input_shape=input_shape,
            output_shape=input_shape,
            flops=0.0,
            bytes_moved=0.0,
        )
    )
    builder = _Builder(graph, "input", input_shape)
    conv_index = 0
    pool_index = 0
    for entry in _VGG11_LAYOUT:
        if entry == "M":
            pool_index += 1
            builder.maxpool(f"pool{pool_index}", kernel=2, stride=2)
        else:
            conv_index += 1
            builder.conv(f"conv{conv_index}", out_channels=entry, kernel=3,
                         stride=1, padding=1)
            builder.batchnorm(f"bn{conv_index}")
            builder.relu(f"relu{conv_index}")
    builder.flatten("flatten")
    builder.linear("fc1", 4096)
    builder.relu("relu_fc1")
    builder.linear("fc2", 4096)
    builder.relu("relu_fc2")
    builder.linear("fc3", num_classes)
    graph.validate()
    return graph


def build_mlp(
    in_features: int = 256,
    hidden: int = 512,
    depth: int = 3,
    num_classes: int = 10,
    name: str = "mlp",
) -> LayerGraph:
    """A plain MLP: ``depth`` hidden linear+ReLU layers plus a classifier.

    Exercises the linear/ReLU cost paths with no convolutions at all.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    graph = LayerGraph(name)
    input_shape = (in_features,)
    graph.add_node(
        Operator(
            name="input",
            op_type=OpType.FLATTEN,
            input_shape=input_shape,
            output_shape=input_shape,
            flops=0.0,
            bytes_moved=0.0,
        )
    )
    builder = _Builder(graph, "input", input_shape)
    for i in range(depth):
        builder.linear(f"fc{i}", hidden)
        builder.relu(f"relu{i}")
    builder.linear("classifier", num_classes)

    # Softmax head so the op-type coverage includes SOFTMAX.
    shape = builder.shape
    graph.add_node(
        Operator(
            name="softmax",
            op_type=OpType.SOFTMAX,
            input_shape=shape,
            output_shape=shape,
            flops=F.softmax_flops(shape[0]),
            bytes_moved=F.softmax_bytes(shape[0]),
        )
    )
    graph.add_edge(builder.head, "softmax")
    graph.validate()
    return graph

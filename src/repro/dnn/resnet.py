"""ResNet builders (the paper's benchmark network).

The paper's evaluation uses ResNet18 with a 224x224 input (Section V).  The
builders here produce operator-level :class:`~repro.dnn.graph.LayerGraph`
instances with exact He et al. (2016) layer configurations, including the
1x1 downsample convolutions on the residual shortcuts of stages conv3_1,
conv4_1 and conv5_1.

The insertion order of every builder is a valid topological order (residual
skip edges always point forward), which the stage partitioner relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dnn import flops as F
from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Operator, OpType
from repro.dnn.shapes import (
    conv2d_output_shape,
    flatten_shape,
    global_pool_output_shape,
    pool_output_shape,
)

Shape3 = Tuple[int, int, int]


@dataclass
class _Builder:
    """Incremental graph builder tracking the current tensor shape."""

    graph: LayerGraph
    head: str  # name of the operator producing the current tensor
    shape: Tuple[int, ...]

    def _attach(self, op: Operator, extra_inputs: Tuple[str, ...] = ()) -> None:
        self.graph.add_node(op)
        self.graph.add_edge(self.head, op.name)
        for src in extra_inputs:
            self.graph.add_edge(src, op.name)
        self.head = op.name
        self.shape = op.output_shape

    def conv(
        self,
        name: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        """Append a bias-free 2-D convolution."""
        in_shape = self.shape
        out_shape = conv2d_output_shape(in_shape, out_channels, kernel, stride, padding)
        params = F.conv2d_params(in_shape[0], out_channels, kernel)
        self._attach(
            Operator(
                name=name,
                op_type=OpType.CONV2D,
                input_shape=in_shape,
                output_shape=out_shape,
                flops=F.conv2d_flops(in_shape[0], out_shape, kernel),
                bytes_moved=F.conv2d_bytes(in_shape, out_shape, params),
                params=params,
                attributes=(("kernel", kernel), ("stride", stride), ("padding", padding)),
            )
        )

    def depthwise_conv(
        self, name: str, kernel: int, stride: int = 1, padding: int = 0
    ) -> None:
        """Append a bias-free depthwise (per-channel) 2-D convolution."""
        in_shape = self.shape
        channels = in_shape[0]
        out_shape = conv2d_output_shape(in_shape, channels, kernel, stride, padding)
        params = F.depthwise_conv2d_params(channels, kernel)
        self._attach(
            Operator(
                name=name,
                op_type=OpType.CONV2D,
                input_shape=in_shape,
                output_shape=out_shape,
                flops=F.depthwise_conv2d_flops(out_shape, kernel),
                bytes_moved=F.conv2d_bytes(in_shape, out_shape, params),
                params=params,
                attributes=(
                    ("kernel", kernel),
                    ("stride", stride),
                    ("padding", padding),
                    ("depthwise", True),
                ),
            )
        )

    def batchnorm(self, name: str) -> None:
        """Append an inference-mode batch normalisation."""
        shape = self.shape
        self._attach(
            Operator(
                name=name,
                op_type=OpType.BATCHNORM,
                input_shape=shape,
                output_shape=shape,
                flops=F.batchnorm_flops(shape),
                bytes_moved=F.batchnorm_bytes(shape),
                params=2 * shape[0],
            )
        )

    def relu(self, name: str) -> None:
        """Append a ReLU."""
        shape = self.shape
        self._attach(
            Operator(
                name=name,
                op_type=OpType.RELU,
                input_shape=shape,
                output_shape=shape,
                flops=F.relu_flops(shape),
                bytes_moved=F.relu_bytes(shape),
            )
        )

    def maxpool(self, name: str, kernel: int, stride: int, padding: int = 0) -> None:
        """Append a max pooling layer."""
        in_shape = self.shape
        out_shape = pool_output_shape(in_shape, kernel, stride, padding)
        self._attach(
            Operator(
                name=name,
                op_type=OpType.MAXPOOL,
                input_shape=in_shape,
                output_shape=out_shape,
                flops=F.pool_flops(out_shape, kernel),
                bytes_moved=F.pool_bytes(in_shape, out_shape),
                attributes=(("kernel", kernel), ("stride", stride), ("padding", padding)),
            )
        )

    def global_avgpool(self, name: str) -> None:
        """Append a global average pooling layer."""
        in_shape = self.shape
        out_shape = global_pool_output_shape(in_shape)
        # Global pooling touches every input element once.
        kernel_equivalent = in_shape[1]
        self._attach(
            Operator(
                name=name,
                op_type=OpType.AVGPOOL,
                input_shape=in_shape,
                output_shape=out_shape,
                flops=F.pool_flops(out_shape, kernel_equivalent),
                bytes_moved=F.pool_bytes(in_shape, out_shape),
            )
        )

    def flatten(self, name: str) -> None:
        """Append a flatten (view change; negligible work, one copy)."""
        in_shape = self.shape
        out_shape = flatten_shape(in_shape)
        self._attach(
            Operator(
                name=name,
                op_type=OpType.FLATTEN,
                input_shape=in_shape,
                output_shape=out_shape,
                flops=0.0,
                bytes_moved=2.0 * F.DTYPE_BYTES * out_shape[0],
            )
        )

    def linear(self, name: str, out_features: int) -> None:
        """Append a fully connected layer with bias."""
        in_features = self.shape[0]
        params = F.linear_params(in_features, out_features)
        self._attach(
            Operator(
                name=name,
                op_type=OpType.LINEAR,
                input_shape=self.shape,
                output_shape=(out_features,),
                flops=F.linear_flops(in_features, out_features),
                bytes_moved=F.linear_bytes(in_features, out_features, params),
                params=params,
            )
        )

    def add(self, name: str, other_head: str, other_shape: Tuple[int, ...]) -> None:
        """Append a residual addition joining ``other_head`` into the trunk."""
        if other_shape != self.shape:
            raise ValueError(
                f"{name}: residual shapes differ: trunk {self.shape} vs "
                f"shortcut {other_shape}"
            )
        shape = self.shape
        self._attach(
            Operator(
                name=name,
                op_type=OpType.ADD,
                input_shape=shape,
                output_shape=shape,
                flops=F.add_flops(shape),
                bytes_moved=F.add_bytes(shape),
            ),
            extra_inputs=(other_head,),
        )


def _input_stem(builder: _Builder) -> None:
    """conv7x7/2 + BN + ReLU + maxpool3x3/2, the standard ResNet stem."""
    builder.conv("conv1", out_channels=64, kernel=7, stride=2, padding=3)
    builder.batchnorm("bn1")
    builder.relu("relu1")
    builder.maxpool("maxpool", kernel=3, stride=2, padding=1)


def _basic_block(
    builder: _Builder, prefix: str, out_channels: int, stride: int
) -> None:
    """One BasicBlock: two 3x3 convs with a (possibly projected) shortcut."""
    shortcut_head = builder.head
    shortcut_shape = builder.shape
    in_channels = builder.shape[0]

    builder.conv(f"{prefix}.conv1", out_channels, kernel=3, stride=stride, padding=1)
    builder.batchnorm(f"{prefix}.bn1")
    builder.relu(f"{prefix}.relu1")
    builder.conv(f"{prefix}.conv2", out_channels, kernel=3, stride=1, padding=1)
    builder.batchnorm(f"{prefix}.bn2")

    if stride != 1 or in_channels != out_channels:
        # Projection shortcut: 1x1 conv + BN on the skip path.  Build it on a
        # temporary builder branched from the shortcut head so the trunk
        # state is untouched.
        side = _Builder(builder.graph, shortcut_head, shortcut_shape)
        side.conv(f"{prefix}.downsample.conv", out_channels, kernel=1, stride=stride)
        side.batchnorm(f"{prefix}.downsample.bn")
        shortcut_head = side.head
        shortcut_shape = side.shape

    builder.add(f"{prefix}.add", shortcut_head, shortcut_shape)
    builder.relu(f"{prefix}.relu2")


def _build_resnet(
    name: str, blocks_per_layer: List[int], input_hw: int, num_classes: int
) -> LayerGraph:
    graph = LayerGraph(name)
    input_shape: Shape3 = (3, input_hw, input_hw)
    # Synthetic input node: zero-cost marker so the graph has one source.
    graph.add_node(
        Operator(
            name="input",
            op_type=OpType.FLATTEN,
            input_shape=input_shape,
            output_shape=input_shape,
            flops=0.0,
            bytes_moved=0.0,
        )
    )
    builder = _Builder(graph, "input", input_shape)
    _input_stem(builder)
    channels = [64, 128, 256, 512]
    for layer_index, (blocks, out_channels) in enumerate(
        zip(blocks_per_layer, channels), start=1
    ):
        for block_index in range(blocks):
            stride = 2 if layer_index > 1 and block_index == 0 else 1
            _basic_block(
                builder,
                prefix=f"layer{layer_index}.{block_index}",
                out_channels=out_channels,
                stride=stride,
            )
    builder.global_avgpool("avgpool")
    builder.flatten("flatten")
    builder.linear("fc", num_classes)
    graph.validate()
    return graph


def build_resnet18(input_hw: int = 224, num_classes: int = 1000) -> LayerGraph:
    """ResNet-18 as an operator graph.

    With the default 224x224 input this is the paper's benchmark task:
    ~1.8 GFLOPs, 11.7M parameters, 20 convolutions.
    """
    return _build_resnet("resnet18", [2, 2, 2, 2], input_hw, num_classes)


def build_resnet34(input_hw: int = 224, num_classes: int = 1000) -> LayerGraph:
    """ResNet-34 as an operator graph (used by examples for heavier tasks)."""
    return _build_resnet("resnet34", [3, 4, 6, 3], input_hw, num_classes)

"""Partitioning a network into stages (sub-tasks).

SGPRS "proposes dividing a network (task) into multiple stages (sub-tasks)
to improve flexibility" (Section IV).  The evaluation divides ResNet18 into
six stages.  This module implements that division as a *balanced contiguous
partition* of the network's topological order: stage boundaries are chosen
by dynamic programming to minimise the most expensive stage, which is the
natural choice when per-stage virtual deadlines are proportional to WCET
(a perfectly balanced split maximises the slack of every stage).

Contiguity is sufficient for correctness: stages of one job execute
sequentially (stage j+1 is released when stage j finishes), so any edge that
crosses a boundary of a contiguous topological interval is automatically
satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Operator

CostFn = Callable[[Operator], float]


def default_operator_cost(op: Operator) -> float:
    """Structural cost proxy used before WCETs exist: FLOPs + scaled bytes.

    The 25 FLOPs-per-byte weight approximates the compute/bandwidth ratio of
    the modelled device, so memory-bound operators are not treated as free.
    The offline profiling phase later replaces this proxy with measured
    WCETs; tests confirm both orderings give similar stage boundaries for
    ResNet18.
    """
    return op.flops + 25.0 * op.bytes_moved


@dataclass
class StagePlan:
    """A partition of one network into sequential stages.

    Attributes
    ----------
    graph:
        The partitioned network.
    stages:
        Stage -> list of operators, in execution order.
    costs:
        Stage cost under the cost function used for partitioning.
    """

    graph: LayerGraph
    stages: List[List[Operator]]
    costs: List[float] = field(default_factory=list)

    @property
    def num_stages(self) -> int:
        """Number of stages in the plan."""
        return len(self.stages)

    def stage_names(self, index: int) -> List[str]:
        """Operator names of one stage."""
        return [op.name for op in self.stages[index]]

    def stage_flops(self, index: int) -> float:
        """Total FLOPs of one stage."""
        return sum(op.flops for op in self.stages[index])

    def imbalance(self) -> float:
        """max(stage cost) / mean(stage cost); 1.0 is perfectly balanced."""
        if not self.costs or sum(self.costs) == 0.0:
            return 1.0
        mean = sum(self.costs) / len(self.costs)
        return max(self.costs) / mean

    def validate(self) -> None:
        """Check the plan covers every operator exactly once, in order.

        Raises
        ------
        ValueError
            If operators are missing, duplicated, or out of topological
            order across stage boundaries.
        """
        flattened = [op.name for stage in self.stages for op in stage]
        expected = [op.name for op in self.graph.topological_order()]
        if sorted(flattened) != sorted(expected):
            raise ValueError("stage plan does not cover the graph exactly once")
        if any(not stage for stage in self.stages):
            raise ValueError("stage plan contains an empty stage")
        order_index = {name: i for i, name in enumerate(flattened)}
        for src, dst in self.graph.edges():
            if order_index[src] >= order_index[dst]:
                raise ValueError(
                    f"stage plan violates dependency {src!r} -> {dst!r}"
                )


def partition_into_stages(
    graph: LayerGraph,
    num_stages: int,
    cost_fn: Optional[CostFn] = None,
) -> StagePlan:
    """Split ``graph`` into ``num_stages`` balanced sequential stages.

    Uses the classic linear-partition dynamic program on the graph's
    topological order, minimising the maximum stage cost.  Zero-cost marker
    operators (e.g. the synthetic ``input`` node) are merged into their
    following stage.

    Parameters
    ----------
    graph:
        Network to partition; must validate as a single-source DAG.
    num_stages:
        Number of stages; must be between 1 and the number of operators.
    cost_fn:
        Per-operator cost used for balancing.  Defaults to
        :func:`default_operator_cost`.

    Raises
    ------
    ValueError
        If ``num_stages`` is out of range.
    """
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    order = graph.topological_order()
    if num_stages > len(order):
        raise ValueError(
            f"cannot split {len(order)} operators into {num_stages} stages"
        )
    cost_fn = cost_fn or default_operator_cost
    costs = [cost_fn(op) for op in order]
    boundaries = _linear_partition(costs, num_stages)
    stages: List[List[Operator]] = []
    start = 0
    for end in boundaries:
        stages.append(order[start:end])
        start = end
    plan = StagePlan(
        graph=graph,
        stages=stages,
        costs=[sum(cost_fn(op) for op in stage) for stage in stages],
    )
    plan.validate()
    return plan


def _linear_partition(costs: Sequence[float], parts: int) -> List[int]:
    """Return end indices (exclusive) of a min-max contiguous partition.

    Standard O(n^2 * k) dynamic program; n is ~70 for ResNet18 so this is
    instantaneous.  Ties are broken toward earlier boundaries, which keeps
    results deterministic.
    """
    n = len(costs)
    prefix = [0.0]
    for cost in costs:
        prefix.append(prefix[-1] + cost)

    def interval(a: int, b: int) -> float:
        """Cost of items a..b-1."""
        return prefix[b] - prefix[a]

    infinity = float("inf")
    # best[k][i] = minimal max-stage-cost splitting items 0..i-1 into k parts
    best = [[infinity] * (n + 1) for _ in range(parts + 1)]
    choice = [[0] * (n + 1) for _ in range(parts + 1)]
    best[0][0] = 0.0
    for k in range(1, parts + 1):
        for i in range(k, n + 1):
            # Last part is items j..i-1; earlier parts cover 0..j-1.
            for j in range(k - 1, i):
                candidate = max(best[k - 1][j], interval(j, i))
                if candidate < best[k][i] - 1e-12:
                    best[k][i] = candidate
                    choice[k][i] = j
    boundaries: List[int] = []
    i = n
    for k in range(parts, 0, -1):
        boundaries.append(i)
        i = choice[k][i]
    boundaries.reverse()
    return boundaries

"""FLOP and DRAM-traffic formulas per operator type.

These feed the single-SM baseline cost model in
:mod:`repro.speedup.calibration`.  Conventions:

* one multiply-accumulate = 2 FLOPs;
* tensors are FP32 (4 bytes per element);
* ``bytes_moved`` counts activation reads + writes plus one pass over the
  parameters (weights are assumed resident but still streamed from L2/DRAM
  once per inference, which matches the memory-bound behaviour the paper's
  Fig. 1 shows for the non-convolution operators).
"""

from __future__ import annotations

from typing import Tuple

from repro.dnn.shapes import element_count

#: Bytes per FP32 element.
DTYPE_BYTES = 4


def conv2d_flops(
    in_channels: int, out_shape: Tuple[int, int, int], kernel: int
) -> float:
    """FLOPs of a square-kernel 2-D convolution (2 * MACs)."""
    out_channels, out_h, out_w = out_shape
    macs = out_channels * out_h * out_w * in_channels * kernel * kernel
    return 2.0 * macs


def conv2d_params(in_channels: int, out_channels: int, kernel: int) -> int:
    """Weight count of a bias-free convolution (ResNet convs have no bias)."""
    return out_channels * in_channels * kernel * kernel


def conv2d_bytes(
    input_shape: Tuple[int, int, int],
    output_shape: Tuple[int, int, int],
    params: int,
) -> float:
    """DRAM traffic of a convolution: read input + weights, write output."""
    return DTYPE_BYTES * (
        element_count(input_shape) + element_count(output_shape) + params
    )


def depthwise_conv2d_flops(out_shape: Tuple[int, int, int], kernel: int) -> float:
    """FLOPs of a depthwise (per-channel) square-kernel convolution.

    Each output element sees only its own channel's ``kernel x kernel``
    window, so the MAC count drops by the ``in_channels`` factor of a dense
    convolution — the defining saving of depthwise-separable networks.
    """
    out_channels, out_h, out_w = out_shape
    macs = out_channels * out_h * out_w * kernel * kernel
    return 2.0 * macs


def depthwise_conv2d_params(channels: int, kernel: int) -> int:
    """Weight count of a bias-free depthwise convolution."""
    return channels * kernel * kernel


def batchnorm_flops(shape: Tuple[int, int, int]) -> float:
    """Inference-time batch norm: scale + shift = 2 FLOPs per element."""
    return 2.0 * element_count(shape)


def batchnorm_bytes(shape: Tuple[int, int, int]) -> float:
    """Read + write each element; per-channel parameters are negligible."""
    return 2.0 * DTYPE_BYTES * element_count(shape)


def relu_flops(shape: Tuple[int, ...]) -> float:
    """One compare per element."""
    return float(element_count(shape))


def relu_bytes(shape: Tuple[int, ...]) -> float:
    """Read + write each element."""
    return 2.0 * DTYPE_BYTES * element_count(shape)


def add_flops(shape: Tuple[int, ...]) -> float:
    """Residual addition: one add per element."""
    return float(element_count(shape))


def add_bytes(shape: Tuple[int, ...]) -> float:
    """Two reads + one write per element."""
    return 3.0 * DTYPE_BYTES * element_count(shape)


def pool_flops(output_shape: Tuple[int, int, int], kernel: int) -> float:
    """One compare/add per window element per output element."""
    return float(element_count(output_shape) * kernel * kernel)


def pool_bytes(
    input_shape: Tuple[int, int, int], output_shape: Tuple[int, int, int]
) -> float:
    """Read the input once, write the output once."""
    return DTYPE_BYTES * (element_count(input_shape) + element_count(output_shape))


def linear_flops(in_features: int, out_features: int) -> float:
    """Fully connected layer: 2 * in * out (MACs x 2)."""
    return 2.0 * in_features * out_features


def linear_params(in_features: int, out_features: int, bias: bool = True) -> int:
    """Weight (+ bias) count of a fully connected layer."""
    return in_features * out_features + (out_features if bias else 0)


def linear_bytes(in_features: int, out_features: int, params: int) -> float:
    """Read input + weights, write output."""
    return DTYPE_BYTES * (in_features + out_features + params)


def softmax_flops(features: int) -> float:
    """exp + sum + divide, roughly 3 FLOPs per element."""
    return 3.0 * features


def softmax_bytes(features: int) -> float:
    """Read + write each element."""
    return 2.0 * DTYPE_BYTES * features

"""Execution-timeline analysis from traces.

Turns a trace produced by a run with ``record_trace=True`` — either the
list-backed :class:`~repro.sim.trace.TraceRecorder` or the columnar
:class:`~repro.sim.trace_columnar.ColumnarTrace`; everything here only
needs the shared iteration/query API — into per-context occupancy
statistics, per-stage latency breakdowns, and a text Gantt chart — the
tools one actually uses to debug why a task set misses deadlines.
:func:`first_divergence` compares two traces event by event, which
combined with :mod:`repro.sim.trace_io` shipping makes cross-run
regression hunts ("where do these two runs first differ?") a one-liner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.clock import TIME_EPS
from repro.sim.trace_kinds import KERNEL_DONE, KERNEL_START, STAGE_RELEASE


@dataclass(frozen=True)
class KernelSpan:
    """One stage execution interval on a context."""

    label: str
    context_id: int
    start: float
    end: float
    priority: Optional[str] = None

    @property
    def duration(self) -> float:
        """Wall time the stage occupied its stream."""
        return self.end - self.start


def extract_spans(trace: Iterable) -> List[KernelSpan]:
    """Pair ``kernel_start``/``kernel_done`` records into spans.

    Kernels still resident when the trace ends (no ``kernel_done``) are
    dropped; aborted kernels never produce a ``kernel_done`` and are
    likewise dropped.
    """
    open_starts: Dict[str, Tuple[float, int, Optional[str]]] = {}
    spans: List[KernelSpan] = []
    for record in trace:
        if record.kind == KERNEL_START:
            open_starts[record.get("kernel")] = (
                record.time,
                record.get("context"),
                record.get("priority"),
            )
        elif record.kind == KERNEL_DONE:
            label = record.get("kernel")
            started = open_starts.pop(label, None)
            if started is not None:
                start, context_id, priority = started
                spans.append(
                    KernelSpan(
                        label=label,
                        context_id=context_id,
                        start=start,
                        end=record.time,
                        priority=priority,
                    )
                )
    return spans


def context_occupancy(
    spans: List[KernelSpan], horizon: float
) -> Dict[int, float]:
    """Mean resident-kernel count per context over ``[0, horizon]``.

    A value of 4.0 means the context's four streams were busy the whole
    time; values are not clipped so modelling errors (more than four
    concurrent spans) would show up in tests.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    busy: Dict[int, float] = {}
    for span in spans:
        if span.end == span.start:
            # A zero-work stage still occupied a stream for an instant;
            # give it one epsilon so it registers instead of vanishing.
            overlap = TIME_EPS if span.start <= horizon else 0.0
        else:
            overlap = min(span.end, horizon) - min(span.start, horizon)
        busy[span.context_id] = busy.get(span.context_id, 0.0) + max(overlap, 0.0)
    return {context: total / horizon for context, total in busy.items()}


def stage_latency_breakdown(
    trace: Iterable,
) -> Dict[int, Tuple[float, float]]:
    """Per stage index: (mean queueing delay, mean execution time).

    Queueing delay is release -> kernel start; execution is start -> done.
    Keyed by the stage's index parsed from labels of the form
    ``task/jN/sK``.
    """
    released: Dict[str, float] = {}
    started: Dict[str, float] = {}
    sums: Dict[int, List[float]] = {}
    for record in trace:
        if record.kind == STAGE_RELEASE:
            released[record.get("stage")] = record.time
        elif record.kind == KERNEL_START:
            started[record.get("kernel")] = record.time
        elif record.kind == KERNEL_DONE:
            label = record.get("kernel")
            if label in released and label in started:
                index = int(label.rsplit("/s", 1)[1])
                bucket = sums.setdefault(index, [0.0, 0.0, 0.0])
                bucket[0] += started[label] - released[label]
                bucket[1] += record.time - started[label]
                bucket[2] += 1.0
    return {
        index: (queueing / count, execution / count)
        for index, (queueing, execution, count) in sums.items()
        if count > 0
    }


def render_gantt(
    spans: List[KernelSpan],
    start: float,
    end: float,
    width: int = 80,
) -> str:
    """Text Gantt chart: one row per context, one column per time bucket.

    Cell characters count the spans *touching* each bucket: space for 0,
    digits 1-9, ``+`` above nine.  With buckets wider than a stage's
    runtime the count includes sequential stages, so it is an activity
    density, not an instantaneous concurrency level.  A zero-duration
    span (a zero-work stage) counts in the bucket its instant lands in
    (the last bucket when it sits exactly on ``end``) — the previous
    strict-overlap test made point spans on bucket boundaries invisible.
    """
    if end <= start:
        raise ValueError("end must exceed start")
    contexts = sorted({span.context_id for span in spans})
    bucket = (end - start) / width
    lines = [f"gantt [{start:.3f}s .. {end:.3f}s], {bucket * 1e3:.2f} ms/col"]

    def touches(span: KernelSpan, t0: float, t1: float, last: bool) -> bool:
        if span.end == span.start:
            if last and span.start == t1:
                return True
            return t0 <= span.start < t1
        return span.start < t1 and span.end > t0

    for context_id in contexts:
        row = []
        for column in range(width):
            t0 = start + column * bucket
            t1 = t0 + bucket
            count = sum(
                1
                for span in spans
                if span.context_id == context_id
                and touches(span, t0, t1, column == width - 1)
            )
            if count == 0:
                row.append(" ")
            elif count <= 9:
                row.append(str(count))
            else:
                row.append("+")
        lines.append(f"ctx{context_id} |{''.join(row)}|")
    return "\n".join(lines)


def first_divergence(
    trace_a: Iterable, trace_b: Iterable
) -> Optional[Tuple[int, Optional[object], Optional[object]]]:
    """First event where two traces differ, or ``None`` when identical.

    Compares record by record (time, kind and fields must all match) and
    returns ``(index, record_a, record_b)`` for the first mismatch; a
    record is ``None`` when that trace ended early.  Works across
    recorder backends and on traces loaded via
    :func:`repro.sim.trace_io.read_trace`, so two stored runs can be
    diffed without re-simulating either.
    """
    iter_a, iter_b = iter(trace_a), iter(trace_b)
    sentinel = object()
    index = 0
    while True:
        record_a = next(iter_a, sentinel)
        record_b = next(iter_b, sentinel)
        if record_a is sentinel and record_b is sentinel:
            return None
        if record_a is sentinel or record_b is sentinel or record_a != record_b:
            return (
                index,
                None if record_a is sentinel else record_a,
                None if record_b is sentinel else record_b,
            )
        index += 1

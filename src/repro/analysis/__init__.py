"""Result analysis: pivots, capacity planning, timelines, persistence."""

from repro.analysis.persistence import (
    load_grid,
    load_run_traces,
    load_sweep,
    save_grid,
    save_sweep,
)
from repro.analysis.pivot import find_pivot, pivot_table
from repro.analysis.planner import (
    CapacityPlan,
    naive_capacity_plan,
    sgprs_capacity_plan,
)
from repro.analysis.report import (
    AGGREGATE_METRICS,
    aggregate_to_csv,
    ascii_chart,
    render_aggregate_table,
    render_fig1_table,
    render_sweep_table,
    sweep_to_csv,
)
from repro.analysis.schedulability import (
    naive_capacity_estimate,
    utilization_bound_tasks,
)
from repro.analysis.timeline import (
    KernelSpan,
    context_occupancy,
    extract_spans,
    first_divergence,
    render_gantt,
    stage_latency_breakdown,
)

__all__ = [
    "find_pivot",
    "pivot_table",
    "ascii_chart",
    "render_sweep_table",
    "render_fig1_table",
    "sweep_to_csv",
    "AGGREGATE_METRICS",
    "aggregate_to_csv",
    "utilization_bound_tasks",
    "naive_capacity_estimate",
    "CapacityPlan",
    "sgprs_capacity_plan",
    "naive_capacity_plan",
    "KernelSpan",
    "extract_spans",
    "context_occupancy",
    "stage_latency_breakdown",
    "render_gantt",
    "first_divergence",
    "render_aggregate_table",
    "save_sweep",
    "load_sweep",
    "save_grid",
    "load_grid",
    "load_run_traces",
]

"""Pivot-point detection.

The paper defines the **pivot point** as "the largest number of tasks that
the scheduler can handle without deadline misses" (Section V).  Because a
long but finite simulation may record a handful of boundary misses right at
capacity, the detector accepts a small tolerance (default: strictly zero,
matching the paper's definition).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.workloads.scenarios import SweepPoint


def find_pivot(
    points: Sequence[SweepPoint], dmr_tolerance: float = 0.0
) -> Optional[int]:
    """Largest task count whose DMR does not exceed ``dmr_tolerance``.

    ``points`` must belong to a single variant.  Returns ``None`` when even
    the smallest measured task count misses deadlines.

    The scan walks task counts in increasing order and stops at the first
    point that misses; isolated zero-DMR points beyond an overloaded region
    (which can appear as simulation noise) do not extend the pivot.
    """
    if dmr_tolerance < 0:
        raise ValueError(f"dmr_tolerance must be >= 0, got {dmr_tolerance}")
    ordered = sorted(points, key=lambda p: p.num_tasks)
    pivot: Optional[int] = None
    for point in ordered:
        if point.dmr <= dmr_tolerance:
            pivot = point.num_tasks
        else:
            break
    return pivot


def pivot_table(
    sweep: Dict[str, List[SweepPoint]], dmr_tolerance: float = 0.0
) -> Dict[str, Optional[int]]:
    """Pivot point per variant for a full scenario sweep."""
    return {
        variant: find_pivot(points, dmr_tolerance)
        for variant, points in sweep.items()
    }

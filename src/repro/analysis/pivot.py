"""Pivot-point detection.

The paper defines the **pivot point** as "the largest number of tasks that
the scheduler can handle without deadline misses" (Section V).  Because a
long but finite simulation may record a handful of boundary misses right at
capacity, the detector accepts a small tolerance (default: strictly zero,
matching the paper's definition).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.scenarios import SweepPoint


def find_pivot(
    points: Sequence[SweepPoint], dmr_tolerance: float = 0.0
) -> Optional[int]:
    """Largest task count whose DMR does not exceed ``dmr_tolerance``.

    ``points`` must belong to a single variant.  Returns ``None`` when even
    the smallest measured task count misses deadlines.

    The scan walks task counts in increasing order and stops at the first
    point that misses; isolated zero-DMR points beyond an overloaded region
    (which can appear as simulation noise) do not extend the pivot.
    """
    if dmr_tolerance < 0:
        raise ValueError(f"dmr_tolerance must be >= 0, got {dmr_tolerance}")
    ordered = sorted(points, key=lambda p: p.num_tasks)
    pivot: Optional[int] = None
    for point in ordered:
        if point.dmr <= dmr_tolerance:
            pivot = point.num_tasks
        else:
            break
    return pivot


def pivot_table(
    sweep: Dict[str, List[SweepPoint]], dmr_tolerance: float = 0.0
) -> Dict[str, Optional[int]]:
    """Pivot point per variant for a full scenario sweep."""
    return {
        variant: find_pivot(points, dmr_tolerance)
        for variant, points in sweep.items()
    }


def find_utilization_pivot(
    pairs: Sequence[Tuple[float, float]], dmr_tolerance: float = 0.0
) -> Optional[float]:
    """Largest target utilization whose DMR stays within tolerance.

    The utilization-axis analogue of :func:`find_pivot` for synthesized
    workloads: ``pairs`` are ``(target utilization, dmr)`` samples of one
    variant.  The scan walks utilizations in increasing order and stops at
    the first miss, so a spurious zero-DMR point beyond an overloaded
    region does not extend the pivot.  Returns ``None`` when even the
    lowest measured utilization misses deadlines.
    """
    if dmr_tolerance < 0:
        raise ValueError(f"dmr_tolerance must be >= 0, got {dmr_tolerance}")
    pivot: Optional[float] = None
    for utilization, dmr in sorted(pairs):
        if dmr <= dmr_tolerance:
            pivot = utilization
        else:
            break
    return pivot


#: Coordinates that may legitimately vary within one variant's pivot scan:
#: the utilization axis itself plus the seed-replication fields.
_PIVOT_AXIS_FIELDS = frozenset(
    {"variant", "total_utilization", "seed", "base_seed", "schema_version"}
)


def _off_axis_identity(point) -> Optional[Tuple]:
    """The point's coordinates other than (variant, utilization, seed).

    ``None`` for bare duck-typed points without ``config_dict`` — those
    carry no extra axes to check.
    """
    config_dict = getattr(point, "config_dict", None)
    if config_dict is None:
        return None
    return tuple(
        sorted(
            (name, value)
            for name, value in config_dict().items()
            if name not in _PIVOT_AXIS_FIELDS
        )
    )


def utilization_pivot_table(
    results, dmr_tolerance: float = 0.0
) -> Dict[str, Optional[float]]:
    """Pivot utilization per variant over a synthesized-workload sweep.

    ``results`` is a sequence of :class:`repro.exp.worker.PointResult`
    (duck-typed: ``.point.variant``, ``.point.total_utilization``,
    ``.dmr``), e.g. ``GridResult.results`` from a utilization-axis grid.
    Replicated seeds of one cell are averaged before pivot detection.

    Within one variant, *only* the utilization axis and the seed may vary:
    a grid that additionally sweeps ``zoo_mix`` / ``period_class`` /
    ``deadline_mode`` (or any other coordinate) would otherwise have
    points from different workloads averaged into one DMR column, and the
    "pivot" would describe no workload at all.  Such mixtures raise
    ``ValueError``; run the pivot analysis per axis slice instead.
    """
    samples: Dict[Tuple[str, float], List[float]] = {}
    order: List[str] = []
    identities: Dict[str, Tuple] = {}
    for result in results:
        variant = result.point.variant
        if variant not in order:
            order.append(variant)
        identity = _off_axis_identity(result.point)
        if identity is not None:
            known = identities.setdefault(variant, identity)
            if known != identity:
                drift = [
                    f"{name}={old!r} vs {new!r}"
                    for (name, old), (_, new) in zip(known, identity)
                    if old != new
                ]
                raise ValueError(
                    f"variant {variant!r} mixes utilization columns from "
                    f"different cells ({'; '.join(drift)}); pivot analysis "
                    f"needs one axis slice at a time"
                )
        key = (variant, result.point.total_utilization)
        samples.setdefault(key, []).append(result.dmr)
    return {
        variant: find_utilization_pivot(
            [
                (utilization, sum(dmrs) / len(dmrs))
                for (v, utilization), dmrs in samples.items()
                if v == variant
            ],
            dmr_tolerance,
        )
        for variant in order
    }

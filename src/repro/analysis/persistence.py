"""Saving and loading sweep results as JSON.

Sweeps are expensive; persisting them lets EXPERIMENTS.md, notebooks and
regression checks reuse one run.  The format is a plain versioned JSON
document, deliberately boring.

Two document shapes exist:

* the classic *sweep* document (``FORMAT_VERSION``): seed-collapsed
  ``variant -> points``, enough to re-render a figure;
* the *grid* document (``GRID_FORMAT_VERSION``): the full
  :class:`~repro.exp.grid.GridSpec` plus every per-seed
  :class:`~repro.exp.worker.PointResult`, so aggregation (mean/CI) can be
  redone offline without re-simulating.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Union

from repro.exp.grid import GridSpec
from repro.exp.runner import GridResult
from repro.exp.worker import PointResult
from repro.workloads.scenarios import SweepPoint

FORMAT_VERSION = 1
#: v2: the serialized GridSpec/GridPoint carry the synthesis axes
#: (workload/utilizations/period_class/zoo_mix/deadline_mode); a v1
#: reader would choke on the new spec fields, so the bump turns that into
#: a clean "unsupported version" error there.
GRID_FORMAT_VERSION = 2

#: Versions this reader can load: v1 documents lack the synthesis-axis
#: fields, which all default.
_READABLE_GRID_VERSIONS = (1, GRID_FORMAT_VERSION)


def sweep_to_dict(sweep: Dict[str, List[SweepPoint]]) -> dict:
    """Serialisable representation of a scenario sweep."""
    return {
        "version": FORMAT_VERSION,
        "variants": {
            variant: [
                {
                    "num_tasks": p.num_tasks,
                    "total_fps": p.total_fps,
                    "dmr": p.dmr,
                    "utilization": p.utilization,
                    "target_utilization": p.target_utilization,
                }
                for p in points
            ]
            for variant, points in sweep.items()
        },
    }


def sweep_from_dict(payload: dict) -> Dict[str, List[SweepPoint]]:
    """Inverse of :func:`sweep_to_dict`.

    Raises
    ------
    ValueError
        On a missing or unsupported format version.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported sweep format version: {version!r}")
    out: Dict[str, List[SweepPoint]] = {}
    for variant, rows in payload["variants"].items():
        out[variant] = [
            SweepPoint(
                variant=variant,
                num_tasks=row["num_tasks"],
                total_fps=row["total_fps"],
                dmr=row["dmr"],
                utilization=row["utilization"],
                # absent in pre-synth documents
                target_utilization=row.get("target_utilization", 0.0),
            )
            for row in rows
        ]
    return out


def save_sweep(
    sweep: Dict[str, List[SweepPoint]], path: Union[str, Path]
) -> None:
    """Write a sweep to a JSON file."""
    with open(path, "w") as handle:
        json.dump(sweep_to_dict(sweep), handle, indent=1)


def load_sweep(path: Union[str, Path]) -> Dict[str, List[SweepPoint]]:
    """Read a sweep from a JSON file."""
    with open(path) as handle:
        return sweep_from_dict(json.load(handle))


def grid_to_dict(result: GridResult) -> dict:
    """Serialisable representation of a full grid run (per-seed points)."""
    return {
        "version": GRID_FORMAT_VERSION,
        "spec": asdict(result.spec),
        "points": [point.to_dict() for point in result.results],
    }


def grid_from_dict(payload: dict) -> GridResult:
    """Inverse of :func:`grid_to_dict` (cache/timing provenance is not kept).

    Raises
    ------
    ValueError
        On a missing or unsupported format version.
    """
    version = payload.get("version")
    if version not in _READABLE_GRID_VERSIONS:
        raise ValueError(f"unsupported grid format version: {version!r}")
    spec_fields = dict(payload["spec"])
    for key in ("variants", "task_counts", "seeds", "utilizations"):
        if key in spec_fields:
            spec_fields[key] = tuple(spec_fields[key])
    return GridResult(
        spec=GridSpec(**spec_fields),
        results=[PointResult.from_dict(row) for row in payload["points"]],
    )


def save_grid(result: GridResult, path: Union[str, Path]) -> None:
    """Write a grid run to a JSON file."""
    with open(path, "w") as handle:
        json.dump(grid_to_dict(result), handle, indent=1)


def load_grid(path: Union[str, Path]) -> GridResult:
    """Read a grid run from a JSON file."""
    with open(path) as handle:
        return grid_from_dict(json.load(handle))

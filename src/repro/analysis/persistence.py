"""Saving and loading sweep results as JSON.

Sweeps are expensive; persisting them lets EXPERIMENTS.md, notebooks and
regression checks reuse one run.  The format is a plain versioned JSON
document, deliberately boring.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.workloads.scenarios import SweepPoint

FORMAT_VERSION = 1


def sweep_to_dict(sweep: Dict[str, List[SweepPoint]]) -> dict:
    """Serialisable representation of a scenario sweep."""
    return {
        "version": FORMAT_VERSION,
        "variants": {
            variant: [
                {
                    "num_tasks": p.num_tasks,
                    "total_fps": p.total_fps,
                    "dmr": p.dmr,
                    "utilization": p.utilization,
                }
                for p in points
            ]
            for variant, points in sweep.items()
        },
    }


def sweep_from_dict(payload: dict) -> Dict[str, List[SweepPoint]]:
    """Inverse of :func:`sweep_to_dict`.

    Raises
    ------
    ValueError
        On a missing or unsupported format version.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported sweep format version: {version!r}")
    out: Dict[str, List[SweepPoint]] = {}
    for variant, rows in payload["variants"].items():
        out[variant] = [
            SweepPoint(
                variant=variant,
                num_tasks=row["num_tasks"],
                total_fps=row["total_fps"],
                dmr=row["dmr"],
                utilization=row["utilization"],
            )
            for row in rows
        ]
    return out


def save_sweep(
    sweep: Dict[str, List[SweepPoint]], path: Union[str, Path]
) -> None:
    """Write a sweep to a JSON file."""
    with open(path, "w") as handle:
        json.dump(sweep_to_dict(sweep), handle, indent=1)


def load_sweep(path: Union[str, Path]) -> Dict[str, List[SweepPoint]]:
    """Read a sweep from a JSON file."""
    with open(path) as handle:
        return sweep_from_dict(json.load(handle))

"""Saving and loading sweep results as JSON.

Sweeps are expensive; persisting them lets EXPERIMENTS.md, notebooks and
regression checks reuse one run.  The format is a plain versioned JSON
document, deliberately boring.

Two document shapes exist:

* the classic *sweep* document (``FORMAT_VERSION``): seed-collapsed
  ``variant -> points``, enough to re-render a figure;
* the *grid* document (``GRID_FORMAT_VERSION``): the full
  :class:`~repro.exp.grid.GridSpec` plus every per-seed
  :class:`~repro.exp.worker.PointResult`, so aggregation (mean/CI) can be
  redone offline without re-simulating.

Grid documents additionally record the device-calibration fingerprint
they were computed under, and :func:`merge_grid_dicts` — the engine of
``python -m repro merge`` — refuses to combine documents whose format
versions or calibration fingerprints differ, or whose duplicate points
disagree: partial shard outputs merge into one canonical grid or fail
loudly, never silently concatenate.
"""

from __future__ import annotations

import json
from dataclasses import asdict, replace
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.exp.grid import GridSpec
from repro.exp.runner import GridResult
from repro.exp.worker import PointResult
from repro.speedup.calibration import DEFAULT_CALIBRATION
from repro.workloads.scenarios import SweepPoint

FORMAT_VERSION = 1
#: v2: the serialized GridSpec/GridPoint carry the synthesis axes
#: (workload/utilizations/period_class/zoo_mix/deadline_mode); a v1
#: reader would choke on the new spec fields, so the bump turns that into
#: a clean "unsupported version" error there.
#: v3: the open-system axes (arrivals/admission on the spec,
#: arrival/admission per point) plus the v2 result payload (goodput,
#: rejection rate, tail latency, queue depth).
GRID_FORMAT_VERSION = 3

#: Versions this reader can load: v1 documents lack the synthesis-axis
#: fields and v2 documents lack the open-system fields; both default.
_READABLE_GRID_VERSIONS = (1, 2, GRID_FORMAT_VERSION)


def sweep_to_dict(sweep: Dict[str, List[SweepPoint]]) -> dict:
    """Serialisable representation of a scenario sweep."""
    return {
        "version": FORMAT_VERSION,
        "variants": {
            variant: [
                {
                    "num_tasks": p.num_tasks,
                    "total_fps": p.total_fps,
                    "dmr": p.dmr,
                    "utilization": p.utilization,
                    "target_utilization": p.target_utilization,
                }
                for p in points
            ]
            for variant, points in sweep.items()
        },
    }


def sweep_from_dict(payload: dict) -> Dict[str, List[SweepPoint]]:
    """Inverse of :func:`sweep_to_dict`.

    Raises
    ------
    ValueError
        On a missing or unsupported format version.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported sweep format version: {version!r}")
    out: Dict[str, List[SweepPoint]] = {}
    for variant, rows in payload["variants"].items():
        out[variant] = [
            SweepPoint(
                variant=variant,
                num_tasks=row["num_tasks"],
                total_fps=row["total_fps"],
                dmr=row["dmr"],
                utilization=row["utilization"],
                # absent in pre-synth documents
                target_utilization=row.get("target_utilization", 0.0),
            )
            for row in rows
        ]
    return out


def save_sweep(
    sweep: Dict[str, List[SweepPoint]], path: Union[str, Path]
) -> None:
    """Write a sweep to a JSON file."""
    with open(path, "w") as handle:
        json.dump(sweep_to_dict(sweep), handle, indent=1)


def load_sweep(path: Union[str, Path]) -> Dict[str, List[SweepPoint]]:
    """Read a sweep from a JSON file."""
    with open(path) as handle:
        return sweep_from_dict(json.load(handle))


def grid_to_dict(result: GridResult) -> dict:
    """Serialisable representation of a grid run (per-seed points).

    Partial results (a shard's or claim worker's slice) serialise the
    same way — the document's spec still describes the whole grid, and
    ``points`` holds whatever slice was computed; :func:`merge_grid_dicts`
    reassembles the whole.  The calibration fingerprint is recorded so
    merges can refuse to mix cost models: the ambient calibration for
    fresh runs, or the result's own provenance
    (:attr:`GridResult.calibration`) when it carries one — a merged
    document keeps its *inputs'* validated fingerprint even when
    persisted on a host whose ambient calibration differs.
    """
    return {
        "version": GRID_FORMAT_VERSION,
        "calibration": result.calibration or DEFAULT_CALIBRATION.digest,
        "spec": asdict(result.spec),
        "points": [point.to_dict() for point in result.results],
    }


def grid_from_dict(payload: dict) -> GridResult:
    """Inverse of :func:`grid_to_dict` (cache/timing provenance is not kept).

    Raises
    ------
    ValueError
        On a missing or unsupported format version.
    """
    version = payload.get("version")
    if version not in _READABLE_GRID_VERSIONS:
        raise ValueError(f"unsupported grid format version: {version!r}")
    spec_fields = dict(payload["spec"])
    for key in ("variants", "task_counts", "seeds", "utilizations", "arrivals"):
        if key in spec_fields:
            spec_fields[key] = tuple(spec_fields[key])
    return GridResult(
        spec=GridSpec(**spec_fields),
        results=[PointResult.from_dict(row) for row in payload["points"]],
    )


def _result_identity(result: PointResult) -> str:
    """Canonical value identity of a result — everything but ``elapsed``,
    which is wall-clock provenance and legitimately differs between the
    two computations of one double-run point."""
    return json.dumps(
        replace(result, elapsed=0.0).to_dict(), sort_keys=True
    )


def merge_grid_dicts(
    payloads: Sequence[dict], allow_partial: bool = False
) -> GridResult:
    """Merge grid documents (shard outputs, claim-run exports) into one.

    Validation, in order; each failure raises ``ValueError``:

    * every document must carry the same, readable format version;
    * calibration fingerprints, where recorded, must agree;
    * every document must describe the same :class:`GridSpec`;
    * a point appearing in several documents must carry identical
      results (a conflicting duplicate means the inputs do not belong to
      one run — different code, calibration, or a corrupted file);
    * every result must belong to the spec's grid (no stray points);
    * coverage must be complete unless ``allow_partial``.

    Returns the merged :class:`GridResult` in canonical grid order (the
    present subset, when partial).
    """
    if not payloads:
        raise ValueError("nothing to merge: no grid documents given")
    versions = sorted({p.get("version") for p in payloads}, key=repr)
    if len(versions) > 1:
        raise ValueError(
            f"refusing to merge grid documents with mixed format "
            f"versions: {versions}"
        )
    if versions[0] not in _READABLE_GRID_VERSIONS:
        raise ValueError(f"unsupported grid format version: {versions[0]!r}")
    calibrations = sorted(
        {p["calibration"] for p in payloads if p.get("calibration")}
    )
    if len(calibrations) > 1:
        raise ValueError(
            "refusing to merge grid documents computed under different "
            "device calibrations (fingerprints "
            + ", ".join(f"{c[:12]}…" for c in calibrations)
            + ")"
        )
    grids = []
    for payload in payloads:
        try:
            grids.append(grid_from_dict(payload))
        except (KeyError, TypeError) as error:
            raise ValueError(
                f"not a grid document (missing or invalid field: {error})"
            ) from None
    spec = grids[0].spec
    for grid in grids[1:]:
        if grid.spec != spec:
            raise ValueError(
                "refusing to merge grid documents describing different "
                f"grids: {asdict(spec)} vs {asdict(grid.spec)}"
            )
    merged: Dict[str, PointResult] = {}
    for grid in grids:
        for result in grid.results:
            key = result.point.config_hash()
            previous = merged.get(key)
            if previous is None:
                merged[key] = result
            elif _result_identity(previous) != _result_identity(result):
                raise ValueError(
                    f"conflicting duplicate results for point "
                    f"{result.point.label}: the documents do not come "
                    f"from one run"
                )
    hashes = [point.config_hash() for point in spec.points()]
    stray = sorted(set(merged) - set(hashes))
    if stray:
        raise ValueError(
            f"{len(stray)} merged point(s) do not belong to the spec's "
            f"grid (first hash: {stray[0][:12]}…)"
        )
    results = [merged[key] for key in hashes if key in merged]
    missing = len(hashes) - len(results)
    if missing and not allow_partial:
        raise ValueError(
            f"merged documents cover only {len(results)} of {len(hashes)} "
            f"grid points; run the missing shards/workers or pass "
            f"allow_partial"
        )
    return GridResult(
        spec=spec,
        results=results,
        # carry the validated input fingerprint so persisting the merge
        # elsewhere does not re-label it with that host's calibration
        calibration=calibrations[0] if calibrations else None,
    )


def save_grid(result: GridResult, path: Union[str, Path]) -> None:
    """Write a grid run to a JSON file."""
    with open(path, "w") as handle:
        json.dump(grid_to_dict(result), handle, indent=1)


def load_grid(path: Union[str, Path]) -> GridResult:
    """Read a grid run from a JSON file."""
    with open(path) as handle:
        return grid_from_dict(json.load(handle))


def load_run_traces(run) -> Dict[str, "object"]:
    """Per-point execution traces stored in a run directory.

    Returns ``{point label: ColumnarTrace}`` for every grid point whose
    trace is present under the store's ``traces/`` prefix (runs executed
    without ``record_traces`` simply yield an empty dict).  Combined
    with :func:`repro.analysis.timeline.first_divergence` this is the
    cross-run comparison path: load the same point's trace from two run
    directories and diff them event by event without re-simulating.
    """
    from repro.exp.dist import load_manifest, load_point_trace

    manifest = load_manifest(run)
    out: Dict[str, object] = {}
    for point in manifest.spec.points():
        trace = load_point_trace(run, point)
        if trace is not None:
            out[point.label] = trace
    return out

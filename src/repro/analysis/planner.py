"""Offline capacity planning: predict the pivot point before simulating.

Deployment question the paper's evaluation answers empirically: *how many
cameras fit?*  This module answers it analytically from the offline-phase
artifacts (stage WCETs and composite curves), so a deployer can size a
context pool without running sweeps.  The benchmark suite cross-checks the
prediction against the simulated pivots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.context_pool import ContextPoolConfig
from repro.core.task import TaskSpec
from repro.gpu.allocator import AllocationParams
from repro.gpu.spec import GpuDeviceSpec


@dataclass(frozen=True)
class CapacityPlan:
    """Predicted capacity of one pool for one task type.

    Attributes
    ----------
    throughput_jobs_per_second:
        Sustainable completion rate at saturation.
    pivot_tasks:
        Predicted largest task count with zero deadline misses.
    bound:
        Which resource binds: ``"aggregate"`` (DRAM/L2 ceiling),
        ``"width"`` (SM width at the pool's concurrency), or
        ``"latency"`` (per-job latency exceeds the deadline first).
    """

    throughput_jobs_per_second: float
    pivot_tasks: int
    bound: str


def sgprs_capacity_plan(
    task: TaskSpec,
    pool: ContextPoolConfig,
    spec: GpuDeviceSpec,
    params: Optional[AllocationParams] = None,
) -> CapacityPlan:
    """Predict SGPRS capacity for identical periodic copies of ``task``.

    Model (mirrors the allocator, DESIGN.md section 4): at saturation every
    context holds ``spec.streams_per_context`` resident stages.  Each
    receives an equal share of the physical SMs (after proportional
    scaling), progresses at the stage-averaged composite speedup, and the
    aggregate is limited by both that width-derived rate and the device
    ceiling, degraded by the over-subscription contention penalty.
    """
    params = params or AllocationParams()
    kernels_resident = pool.num_contexts * spec.streams_per_context
    share = min(
        pool.sms_per_context / spec.streams_per_context,
        spec.total_sms / kernels_resident,
    )
    # Work-weighted mean composite speedup across the task's stages.
    total_work = sum(stage.composite.base_time for stage in task.stages)
    mean_rate = sum(
        stage.composite.base_time * stage.composite.speedup(share)
        for stage in task.stages
    ) / total_work
    colocation = 1.0 / (1.0 + params.beta * (spec.streams_per_context - 1))
    width_rate = kernels_resident * mean_rate * colocation

    pressure = pool.total_nominal_sms / spec.total_sms
    contention = 1.0
    if pressure > 1.0:
        contention = 1.0 / (1.0 + params.alpha * (pressure - 1.0))

    if width_rate <= spec.aggregate_speedup_cap:
        aggregate = width_rate * contention
        bound = "width"
    else:
        aggregate = spec.aggregate_speedup_cap * contention
        bound = "aggregate"

    throughput = aggregate / total_work
    pivot = int(throughput / task.fps)

    # Latency check: a lone job must clear its deadline even at saturation
    # shares; otherwise the pivot is latency-bound earlier.
    job_latency = sum(
        stage.composite.time_at(max(share, 1.0)) for stage in task.stages
    )
    if job_latency > task.relative_deadline:
        bound = "latency"
        pivot = 0

    return CapacityPlan(
        throughput_jobs_per_second=throughput,
        pivot_tasks=pivot,
        bound=bound,
    )


def naive_capacity_plan(
    task: TaskSpec,
    pool: ContextPoolConfig,
    switch_overhead: float = 1.0e-4,
) -> CapacityPlan:
    """Predict naive-scheduler capacity (whole jobs, FIFO per partition).

    The pivot is additionally limited by FIFO waiting time: a job may wait
    behind one job of every other task pinned to its partition, so the
    pivot cannot exceed ``np * floor(D / C)`` tasks.
    """
    if not task.stages:
        raise ValueError("task has no stages; run the offline phase first")
    whole = sum(stage.composite.base_time for stage in task.stages)
    service = (
        sum(stage.composite.time_at(pool.sms_per_context) for stage in task.stages)
        + switch_overhead
    )
    throughput = pool.num_contexts / service
    throughput_pivot = int(throughput / task.fps)
    wait_pivot = pool.num_contexts * int(task.relative_deadline / service)
    return CapacityPlan(
        throughput_jobs_per_second=throughput,
        pivot_tasks=min(throughput_pivot, wait_pivot),
        bound="latency" if wait_pivot < throughput_pivot else "width",
    )

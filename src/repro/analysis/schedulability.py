"""Back-of-envelope schedulability analysis.

These closed-form estimates are *not* used by the online scheduler — they
exist so users (and tests) can sanity-check where pivot points should fall
before running a sweep, and so the benchmark harness can assert the
simulated pivots land near the analytic capacity.
"""

from __future__ import annotations

from repro.core.task import TaskSpec
from repro.gpu.spec import GpuDeviceSpec
from repro.speedup.composite import CompositeWorkload


def naive_capacity_estimate(
    network: CompositeWorkload,
    num_contexts: int,
    sms_per_context: float,
    switch_overhead: float = 0.0,
) -> float:
    """Jobs/second the naive scheduler can sustain.

    Each partition serves whole jobs sequentially at its partition size,
    paying ``switch_overhead`` per job once tasks interleave.
    """
    if num_contexts < 1:
        raise ValueError("num_contexts must be >= 1")
    service_time = network.time_at(sms_per_context) + switch_overhead
    return num_contexts / service_time


def sgprs_capacity_estimate(
    network: CompositeWorkload,
    spec: GpuDeviceSpec,
) -> float:
    """Jobs/second SGPRS can sustain at full device saturation.

    At saturation the device's aggregate progress ceiling binds: total
    progress is ``aggregate_speedup_cap`` single-SM seconds per second, and
    each job needs ``base_time`` single-SM seconds of progress.
    """
    return spec.aggregate_speedup_cap / network.base_time


def utilization_bound_tasks(
    task: TaskSpec,
    capacity_jobs_per_second: float,
) -> int:
    """Largest task count whose demand stays within a capacity estimate."""
    if capacity_jobs_per_second <= 0:
        raise ValueError("capacity must be positive")
    demand_per_task = task.fps
    return int(capacity_jobs_per_second / demand_per_task)

"""Back-of-envelope schedulability analysis.

These closed-form estimates are *not* used by the online scheduler — they
exist so users (and tests) can sanity-check where pivot points should fall
before running a sweep, and so the benchmark harness can assert the
simulated pivots land near the analytic capacity.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.task import TaskSet, TaskSpec
from repro.gpu.spec import GpuDeviceSpec
from repro.speedup.composite import CompositeWorkload


def naive_capacity_estimate(
    network: CompositeWorkload,
    num_contexts: int,
    sms_per_context: float,
    switch_overhead: float = 0.0,
) -> float:
    """Jobs/second the naive scheduler can sustain.

    Each partition serves whole jobs sequentially at its partition size,
    paying ``switch_overhead`` per job once tasks interleave.
    """
    if num_contexts < 1:
        raise ValueError("num_contexts must be >= 1")
    service_time = network.time_at(sms_per_context) + switch_overhead
    return num_contexts / service_time


def sgprs_capacity_estimate(
    network: CompositeWorkload,
    spec: GpuDeviceSpec,
) -> float:
    """Jobs/second SGPRS can sustain at full device saturation.

    At saturation the device's aggregate progress ceiling binds: total
    progress is ``aggregate_speedup_cap`` single-SM seconds per second, and
    each job needs ``base_time`` single-SM seconds of progress.
    """
    return spec.aggregate_speedup_cap / network.base_time


def utilization_bound_tasks(
    task: TaskSpec,
    capacity_jobs_per_second: float,
) -> int:
    """Largest task count whose demand stays within a capacity estimate."""
    if capacity_jobs_per_second <= 0:
        raise ValueError("capacity must be positive")
    demand_per_task = task.fps
    return int(capacity_jobs_per_second / demand_per_task)


# ----------------------------------------------------------------------
# Heterogeneous-mix estimates (synthesized workloads)
# ----------------------------------------------------------------------
def mixed_naive_capacity_estimate(
    networks: Sequence[CompositeWorkload],
    weights: Optional[Sequence[float]] = None,
    num_contexts: int = 1,
    sms_per_context: float = 34.0,
    switch_overhead: float = 0.0,
) -> float:
    """Jobs/second the naive scheduler sustains on a weighted network mix.

    The per-job service time becomes the mix's *expected* whole-job time
    at the partition size; the capacity estimate is otherwise the same
    M/D/c-style bound as :func:`naive_capacity_estimate` (which this
    generalises: a single network with weight 1 reproduces it).
    """
    if not networks:
        raise ValueError("networks must be non-empty")
    if num_contexts < 1:
        raise ValueError("num_contexts must be >= 1")
    weights = list(weights) if weights is not None else [1.0] * len(networks)
    if len(weights) != len(networks) or any(w <= 0 for w in weights):
        raise ValueError("weights must match networks and be positive")
    total_weight = sum(weights)
    expected_service = (
        sum(
            weight * (network.time_at(sms_per_context) + switch_overhead)
            for network, weight in zip(networks, weights)
        )
        / total_weight
    )
    return num_contexts / expected_service


def mixed_sgprs_capacity_estimate(
    networks: Sequence[CompositeWorkload],
    spec: GpuDeviceSpec,
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Jobs/second SGPRS sustains at saturation on a weighted network mix.

    At saturation the aggregate progress ceiling binds regardless of how
    jobs interleave, so the expected single-SM seconds per job is the only
    mix statistic that matters.
    """
    if not networks:
        raise ValueError("networks must be non-empty")
    weights = list(weights) if weights is not None else [1.0] * len(networks)
    if len(weights) != len(networks) or any(w <= 0 for w in weights):
        raise ValueError("weights must match networks and be positive")
    total_weight = sum(weights)
    expected_base_time = (
        sum(
            weight * network.base_time
            for network, weight in zip(networks, weights)
        )
        / total_weight
    )
    return spec.aggregate_speedup_cap / expected_base_time


def taskset_naive_utilization(
    task_set: TaskSet,
    num_contexts: int,
    sms_per_context: float,
    switch_overhead: float = 0.0,
) -> float:
    """Demand fraction of the naive scheduler's capacity for a concrete
    (possibly heterogeneous) taskset; > 1 predicts deadline misses.

    Each task demands ``fps_i * service_i`` context-seconds per second,
    where ``service_i`` is its whole-job time at the partition size (the
    sum of its stage composites' times).
    """
    if num_contexts < 1:
        raise ValueError("num_contexts must be >= 1")
    demand = 0.0
    for task in task_set:
        service = (
            sum(stage.composite.time_at(sms_per_context) for stage in task.stages)
            + switch_overhead
        )
        demand += task.fps * service
    return demand / num_contexts


def taskset_sgprs_utilization(task_set: TaskSet, spec: GpuDeviceSpec) -> float:
    """Demand fraction of the SGPRS saturation ceiling for a concrete
    taskset; > 1 predicts deadline misses.

    Each task demands ``fps_i * base_time_i`` single-SM seconds per
    second against the device's ``aggregate_speedup_cap`` supply.
    """
    demand = sum(
        task.fps * sum(stage.composite.base_time for stage in task.stages)
        for task in task_set
    )
    return demand / spec.aggregate_speedup_cap

"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints the same rows/series the paper plots; these
helpers keep the formatting in one place and export CSV for external
plotting.
"""

from __future__ import annotations

import io
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.dnn.ops import OpType
from repro.exp.aggregate import AggregatePoint
from repro.workloads.scenarios import SweepPoint


def render_fig1_table(
    op_curves: Mapping[OpType, Sequence[Tuple[int, float]]],
    network_curve: Sequence[Tuple[int, float]],
    network_name: str = "resnet18",
) -> str:
    """Fig. 1 as text: one row per SM count, one column per operation."""
    op_types = list(op_curves)
    sms_axis = [sms for sms, _ in network_curve]
    header = ["SMs"] + [str(t) for t in op_types] + [network_name]
    rows: List[List[str]] = []
    lookup = {
        op_type: dict(points) for op_type, points in op_curves.items()
    }
    net_lookup = dict(network_curve)
    for sms in sms_axis:
        row = [str(sms)]
        for op_type in op_types:
            value = lookup[op_type].get(sms)
            row.append(f"{value:.2f}" if value is not None else "-")
        row.append(f"{net_lookup[sms]:.2f}")
        rows.append(row)
    return _format_table(header, rows)


def render_sweep_table(
    sweep: Dict[str, List[SweepPoint]],
    metric: str = "total_fps",
    title: str = "",
) -> str:
    """Figs. 3/4 as text: task count rows, scheduler-variant columns."""
    if metric not in ("total_fps", "dmr"):
        raise ValueError(f"metric must be 'total_fps' or 'dmr', got {metric!r}")
    variants = list(sweep)
    counts = sorted({p.num_tasks for points in sweep.values() for p in points})
    lookup = {
        variant: {p.num_tasks: p for p in points}
        for variant, points in sweep.items()
    }
    header = ["tasks"] + variants
    rows: List[List[str]] = []
    for count in counts:
        row = [str(count)]
        for variant in variants:
            point = lookup[variant].get(count)
            if point is None:
                row.append("-")
            elif metric == "total_fps":
                row.append(f"{point.total_fps:.1f}")
            else:
                row.append(f"{point.dmr * 100:.1f}%")
        rows.append(row)
    table = _format_table(header, rows)
    return f"{title}\n{table}" if title else table


#: Metrics :func:`render_aggregate_table` can render.  The first two are
#: the paper's headline pair; the rest are the open-system additions
#: (goodput/rejections from PR 5's admission control, tail latency and
#: queue depth from the arrivals subsystem).
AGGREGATE_METRICS = (
    "total_fps",
    "dmr",
    "goodput",
    "rejection_rate",
    "p99_response",
    "p999_response",
    "mean_queue_depth",
    "max_queue_depth",
)


def _aggregate_cell(agg: AggregatePoint, metric: str) -> str:
    """One ``mean±ci95`` table cell for a metric of one cell."""
    if metric == "total_fps":
        return f"{agg.mean_fps:.1f}±{agg.ci_fps:.1f}"
    if metric == "dmr":
        return f"{agg.mean_dmr * 100:.1f}±{agg.ci_dmr * 100:.1f}%"
    if metric == "goodput":
        return f"{agg.mean_goodput:.1f}±{agg.ci_goodput:.1f}"
    if metric == "rejection_rate":
        return (
            f"{agg.mean_rejection_rate * 100:.1f}"
            f"±{agg.ci_rejection_rate * 100:.1f}%"
        )
    if metric == "p99_response":
        if agg.mean_p99 is None:
            return "-"
        return f"{agg.mean_p99 * 1e3:.1f}±{agg.ci_p99 * 1e3:.1f}ms"
    if metric == "p999_response":
        if agg.mean_p999 is None:
            return "-"
        return f"{agg.mean_p999 * 1e3:.1f}±{agg.ci_p999 * 1e3:.1f}ms"
    if metric == "mean_queue_depth":
        return f"{agg.mean_queue_depth:.2f}±{agg.ci_queue_depth:.2f}"
    # max_queue_depth: a max over seeds, so no confidence interval
    return str(agg.max_queue_depth)


def render_aggregate_table(
    aggregates: Dict[str, List[AggregatePoint]],
    metric: str = "total_fps",
    title: str = "",
) -> str:
    """Seed-replicated sweep as text: ``mean +/- ci95`` cells.

    ``metric`` selects any of :data:`AGGREGATE_METRICS`; the half-width
    comes from :func:`repro.exp.aggregate.mean_ci` over the grid's
    replication seeds (``max_queue_depth`` is a max over seeds and
    renders without one; the percentile metrics render ``-`` where no
    seed completed a post-warmup job).
    """
    if metric not in AGGREGATE_METRICS:
        raise ValueError(
            f"metric must be one of {AGGREGATE_METRICS}, got {metric!r}"
        )
    variants = list(aggregates)
    counts = sorted(
        {a.num_tasks for points in aggregates.values() for a in points}
    )
    lookup = {
        variant: {a.num_tasks: a for a in points}
        for variant, points in aggregates.items()
    }
    header = ["tasks"] + variants
    rows: List[List[str]] = []
    for count in counts:
        row = [str(count)]
        for variant in variants:
            agg = lookup[variant].get(count)
            if agg is None:
                row.append("-")
            else:
                row.append(_aggregate_cell(agg, metric))
        rows.append(row)
    table = _format_table(header, rows)
    return f"{title}\n{table}" if title else table


def aggregate_to_csv(aggregates: Dict[str, List[AggregatePoint]]) -> str:
    """CSV export of seed-aggregated cells, every metric in one row.

    One row per aggregation cell with its coordinates (variant, task
    count, target utilization, arrival, admission), the replication
    count ``n`` and each metric's mean and ci95 — including the
    open-system tail metrics the sweep CSV cannot carry.  ``mean_p99`` /
    ``mean_p999`` cells are empty when no seed completed a post-warmup
    job.
    """
    out = io.StringIO()
    out.write(
        "variant,num_tasks,target_utilization,arrival,admission,n,"
        "mean_fps,ci_fps,mean_dmr,ci_dmr,mean_utilization,ci_utilization,"
        "mean_goodput,ci_goodput,mean_rejection_rate,ci_rejection_rate,"
        "mean_p99,ci_p99,mean_p999,ci_p999,"
        "mean_queue_depth,ci_queue_depth,max_queue_depth\n"
    )
    for variant, points in aggregates.items():
        for a in sorted(
            points, key=lambda q: (q.num_tasks, q.total_utilization)
        ):
            p99 = "" if a.mean_p99 is None else f"{a.mean_p99:.6f}"
            p999 = "" if a.mean_p999 is None else f"{a.mean_p999:.6f}"
            out.write(
                f"{variant},{a.num_tasks},{a.total_utilization:g},"
                f"{a.arrival},{a.admission},{a.n},"
                f"{a.mean_fps:.3f},{a.ci_fps:.3f},"
                f"{a.mean_dmr:.5f},{a.ci_dmr:.5f},"
                f"{a.mean_utilization:.4f},{a.ci_utilization:.4f},"
                f"{a.mean_goodput:.3f},{a.ci_goodput:.3f},"
                f"{a.mean_rejection_rate:.5f},{a.ci_rejection_rate:.5f},"
                f"{p99},{a.ci_p99:.6f},{p999},{a.ci_p999:.6f},"
                f"{a.mean_queue_depth:.4f},{a.ci_queue_depth:.4f},"
                f"{a.max_queue_depth}\n"
            )
    return out.getvalue()


def render_utilization_table(
    aggregates: Dict[str, List[AggregatePoint]],
    metric: str = "total_fps",
    title: str = "",
) -> str:
    """Utilization-axis sweep as text: one row per (task count, target
    utilization) cell, one column per scheduler variant.

    The row axis comes from :attr:`AggregatePoint.total_utilization` — the
    synthesized-workload grids' load coordinate; single-seed cells render
    plain means, replicated cells ``mean±ci95``.
    """
    if metric not in ("total_fps", "dmr"):
        raise ValueError(f"metric must be 'total_fps' or 'dmr', got {metric!r}")
    variants = list(aggregates)
    rows_axis = sorted(
        {
            (a.num_tasks, a.total_utilization)
            for points in aggregates.values()
            for a in points
        }
    )
    lookup = {
        variant: {(a.num_tasks, a.total_utilization): a for a in points}
        for variant, points in aggregates.items()
    }
    header = ["tasks", "target_util"] + variants
    rows: List[List[str]] = []
    for num_tasks, utilization in rows_axis:
        row = [str(num_tasks), f"{utilization:g}" if utilization else "default"]
        for variant in variants:
            agg = lookup[variant].get((num_tasks, utilization))
            if agg is None:
                row.append("-")
                continue
            if metric == "total_fps":
                value, ci = agg.mean_fps, agg.ci_fps
                cell = f"{value:.1f}"
                if agg.n > 1:
                    cell += f"±{ci:.1f}"
            else:
                value, ci = agg.mean_dmr * 100, agg.ci_dmr * 100
                cell = f"{value:.1f}"
                if agg.n > 1:
                    cell += f"±{ci:.1f}"
                cell += "%"
            row.append(cell)
        rows.append(row)
    table = _format_table(header, rows)
    return f"{title}\n{table}" if title else table


def sweep_to_csv(sweep: Dict[str, List[SweepPoint]]) -> str:
    """CSV export: variant,num_tasks,target_utilization,total_fps,dmr,utilization.

    ``target_utilization`` keeps the rows of a synthesized
    utilization-axis sweep distinguishable (it is 0 on the paper's
    task-count sweeps); ``utilization`` is the measured device busy
    fraction.
    """
    out = io.StringIO()
    out.write("variant,num_tasks,target_utilization,total_fps,dmr,utilization\n")
    for variant, points in sweep.items():
        for p in sorted(
            points, key=lambda q: (q.num_tasks, q.target_utilization)
        ):
            out.write(
                f"{variant},{p.num_tasks},{p.target_utilization:g},"
                f"{p.total_fps:.3f},{p.dmr:.5f},{p.utilization:.4f}\n"
            )
    return out.getvalue()


def ascii_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Minimal ASCII line chart for terminal-rendered figures.

    Each series is plotted with its own marker; axes are linearly scaled to
    the data envelope.
    """
    markers = "ox+*#@%&"
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points:
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker
    lines = [title] if title else []
    lines.append(f"{y_max:10.1f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.1f} +" + "-" * width)
    lines.append(" " * 12 + f"{x_min:<10.1f}" + " " * (width - 20) + f"{x_max:>10.1f}")
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def _format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)

"""Online scheduling plumbing shared by SGPRS and the naive baseline.

``SchedulerBase`` owns the job lifecycle: releases pulled from an
arrival source (:mod:`repro.workloads.arrivals`; strictly periodic by
default), admission control (:mod:`repro.core.admission`), per-release
absolute deadline assignment (Section IV-B1), stage-by-stage execution on
the GPU device, and metrics recording.  Concrete schedulers specialise

* :meth:`SchedulerBase.select_context` — the context-assignment policy;
* :meth:`SchedulerBase.admit_job` / the ``admission`` policy —
  admission/shedding behaviour;
* the reconfiguration policy — what a partition switch costs.

Trace kinds emitted here (see the class docstring for the full list)
distinguish two ways a release can fail to enter the system:

``job_skip``
    The frame was dropped *at the source* — the paper's blocking-client
    model, where a release whose predecessor is still in flight never
    reaches the server.  Skipped jobs count as deadline misses.
``job_reject``
    The *admission controller* refused the job — a deliberate
    load-shedding decision under overload.  Rejected jobs feed the
    rejection-rate metric and are excluded from the deadline-miss rate.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - workloads imports core at runtime
    from repro.workloads.arrivals import ArrivalProcess

from repro.core.admission import AdmissionDecision, AdmissionPolicy
from repro.core.deadlines import absolute_stage_deadlines
from repro.core.priority import initial_priority, promote_if_predecessor_missed
from repro.core.task import StageSpec, TaskSet, TaskSpec
from repro.gpu.context import SimContext
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.gpu.mps import ReconfigurationPolicy, ZeroConfigPool
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector, StageRecord
from repro.sim.trace import TraceRecorder
from repro.sim.trace_kinds import (
    JOB_COMPLETE,
    JOB_REJECT,
    JOB_RELEASE,
    JOB_SHED,
    JOB_SKIP,
    STAGE_RELEASE,
)


class StageInstance:
    """One released stage of one job."""

    def __init__(
        self,
        spec: StageSpec,
        job: "JobInstance",
        absolute_deadline: float,
        priority: PriorityLevel,
        record: Optional[StageRecord] = None,
    ) -> None:
        self.spec = spec
        self.job = job
        self.absolute_deadline = absolute_deadline
        self.priority = priority
        self.record = record
        self.kernel: Optional[StageKernel] = None
        self.finish_time: Optional[float] = None

    @property
    def label(self) -> str:
        """Stable identifier, e.g. ``"cam3/j12/s4"``."""
        return f"{self.job.task.name}/j{self.job.index}/s{self.spec.index}"


class JobInstance:
    """One periodic release of a task."""

    def __init__(
        self, task: TaskSpec, index: int, release_time: float
    ) -> None:
        self.task = task
        self.index = index
        self.release_time = release_time
        self.absolute_deadline = release_time + task.relative_deadline
        self.stage_deadlines: List[float] = absolute_stage_deadlines(
            task, release_time
        )
        self.stages: Dict[int, StageInstance] = {}
        self.completed = False
        self.aborted = False
        #: Whether the job passed admission (skipped/rejected jobs never
        #: enter the system and keep this False).
        self.admitted = False
        #: Internal: the job left the in-flight accounting (completed or
        #: shed); guards double-decrements of the queue-depth counters.
        self._departed = False

    @property
    def finished(self) -> bool:
        """Whether the job is out of the system (done or shed)."""
        return self.completed or self.aborted


class SchedulerBase:
    """Common machinery for online schedulers.

    Parameters
    ----------
    engine / device:
        The simulation substrate; the scheduler installs itself as the
        device's completion callback.
    task_set:
        Offline-prepared tasks (stages, WCETs, virtual deadlines).
    metrics:
        Collector for job/stage records.
    reconfig:
        Partition reconfiguration cost policy; defaults to the
        zero-configuration pool.
    trace:
        Optional trace recorder.  The scheduler emits kinds
        ``job_release``, ``job_skip`` (a release dropped at the source
        because the task's previous job was still in flight — see
        :meth:`admit_job`; counts as a deadline miss), ``job_reject`` (a
        release refused by the admission policy — counts toward the
        rejection rate, never toward DMR), ``job_complete``, ``job_shed``
        (aborted via :meth:`abort_job`) and ``stage_release``; the device
        layer adds ``kernel_start``, ``kernel_done`` and ``allocation``.
    horizon:
        Releases are only scheduled strictly before this simulated time.
    arrivals:
        The :class:`~repro.workloads.arrivals.ArrivalProcess` supplying
        release times.  ``None`` (the default) is strictly periodic —
        bit-identical to the historical hardcoded release loop.
    admission:
        Optional :class:`~repro.core.admission.AdmissionPolicy`.  ``None``
        (the default) keeps the legacy boolean :meth:`admit_job` hook,
        whose stock behaviour is the paper's skip-if-in-flight rule;
        a policy object takes over the decision and can additionally
        *reject* jobs (``job_reject``).
    work_jitter_cv:
        Relative half-width of per-stage execution-time jitter: each stage
        instance's work is the nominal work times a uniform factor in
        ``[1 - cv, 1 + cv]``.  Models the run-to-run variability real GPU
        kernels show (cache state, DRAM arbitration, OS noise); the offline
        WCET margin is meant to cover it.  0 gives fully deterministic
        execution.
    seed:
        Seed for the jitter stream; runs are reproducible for a fixed seed.
    """

    #: Subclasses give themselves a short name for reports.
    name = "base"

    #: Ablation switch: when ``True`` every release is admitted even if the
    #: task's previous job is still in flight (non-blocking clients with an
    #: unbounded queue).
    admit_all_releases = False

    #: Ablation switch: the paper's MEDIUM promotion of late stages
    #: (Section IV-B3).  Disabled in the ablation benchmark.
    enable_medium_promotion = True

    def __init__(
        self,
        engine: SimulationEngine,
        device: GpuDevice,
        task_set: TaskSet,
        metrics: MetricsCollector,
        reconfig: Optional[ReconfigurationPolicy] = None,
        trace: Optional[TraceRecorder] = None,
        horizon: float = float("inf"),
        work_jitter_cv: float = 0.0,
        seed: int = 0,
        arrivals: Optional["ArrivalProcess"] = None,
        admission: Optional[AdmissionPolicy] = None,
    ) -> None:
        if not 0.0 <= work_jitter_cv < 1.0:
            raise ValueError(
                f"work_jitter_cv must be in [0, 1), got {work_jitter_cv}"
            )
        self.engine = engine
        self.device = device
        self.task_set = task_set
        self.metrics = metrics
        self.reconfig = reconfig if reconfig is not None else ZeroConfigPool()
        self.trace = trace
        self.horizon = horizon
        self.work_jitter_cv = work_jitter_cv
        self.seed = seed
        self.arrivals = arrivals
        self.admission = admission
        self._rng = random.Random(seed)
        self._job_counters: Dict[str, int] = {}
        self._latest_job: Dict[str, JobInstance] = {}
        self._arrival_streams: Dict[str, Iterator[float]] = {}
        self._inflight: Dict[str, int] = {}
        self._inflight_total = 0
        device.on_kernel_complete = self._on_kernel_complete

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def select_context(self, kernel: StageKernel) -> SimContext:
        """Choose the context a released stage is assigned to."""
        raise NotImplementedError

    def admit_job(
        self, job: JobInstance, previous: Optional[JobInstance]
    ) -> bool:
        """Whether a released job enters the system.

        The default models the paper's deployment: each task is a periodic
        client thread issuing a *blocking* inference call, so while the
        previous frame is still in flight the next release is skipped (the
        frame is dropped at the source).  A skipped job stays in the metrics
        as released-but-never-finished, i.e. a deadline miss.

        Subclasses may override (``admit_all_releases = True`` disables the
        skip for ablations, letting backlogs snowball).
        """
        if self.admit_all_releases:
            return True
        return previous is None or previous.finished

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open every task's arrival stream and schedule its first release."""
        arrivals = self.arrivals
        if arrivals is None:
            # Lazy import: core must stay importable without workloads.
            from repro.workloads.arrivals import PeriodicArrivals

            arrivals = self.arrivals = PeriodicArrivals()
        from repro.workloads.arrivals import derive_arrival_seed

        for task in self.task_set:
            self._arrival_streams[task.name] = arrivals.stream(
                task, derive_arrival_seed(self.seed, arrivals.name, task.name)
            )
            self._schedule_next_release(task)

    def _schedule_next_release(self, task: TaskSpec) -> None:
        """Pull the task's next arrival and schedule it, if inside horizon.

        A ``None`` from the stream (only replay streams are finite) or an
        arrival at/past the horizon ends the task's release chain.
        """
        when = next(self._arrival_streams[task.name], None)
        if when is not None and when < self.horizon:
            self.engine.schedule_at(
                when,
                lambda t=task: self._release_job(t),
                tag=f"release:{task.name}",
            )

    def _decide(
        self, job: JobInstance, previous: Optional[JobInstance]
    ) -> AdmissionDecision:
        """Route a release through the policy object or the legacy hook."""
        if self.admission is None:
            if self.admit_job(job, previous):
                return AdmissionDecision.ADMIT
            return AdmissionDecision.SKIP
        return self.admission.decide(
            job, previous, self._inflight.get(job.task.name, 0)
        )

    def _release_job(self, task: TaskSpec) -> None:
        index = self._job_counters.get(task.name, 0)
        self._job_counters[task.name] = index + 1
        now = self.engine.now
        job = JobInstance(task, index, now)
        self.metrics.job_released(task.name, index, now, job.absolute_deadline)
        if self.trace is not None:
            # deadline rides along so streaming consumers
            # (TraceMetricsAccumulator) can score DMR without the workload
            self.trace.record(
                now,
                JOB_RELEASE,
                task=task.name,
                job=index,
                deadline=job.absolute_deadline,
            )
        previous = self._latest_job.get(task.name)
        decision = self._decide(job, previous)
        if decision is AdmissionDecision.ADMIT:
            job.admitted = True
            self._latest_job[task.name] = job
            self._inflight[task.name] = self._inflight.get(task.name, 0) + 1
            self._inflight_total += 1
            self.metrics.record_queue_depth(now, self._inflight_total)
            self._release_stage(job, 0, predecessor_missed=False)
        elif decision is AdmissionDecision.REJECT:
            job.aborted = True
            self.metrics.job_rejected(task.name, index)
            if self.trace is not None:
                self.trace.record(now, JOB_REJECT, task=task.name, job=index)
        else:
            job.aborted = True
            if self.trace is not None:
                self.trace.record(now, JOB_SKIP, task=task.name, job=index)
        self._schedule_next_release(task)

    def _job_departed(self, job: JobInstance) -> None:
        """Take an admitted job out of the in-flight accounting once.

        The count must exist and be positive — every admitted job
        incremented it at release.  A missing or non-positive count means
        the admit/depart bookkeeping drifted; failing loudly here beats
        the silent ``dict.get(name, 1) - 1`` this once did, which invented
        a phantom admission and let ``_inflight_total`` go negative
        without anyone noticing.
        """
        if not job.admitted or job._departed:
            return
        job._departed = True
        name = job.task.name
        count = self._inflight.get(name, 0)
        if count <= 0 or self._inflight_total <= 0:
            raise RuntimeError(
                f"in-flight accounting drift: job {name}#{job.index} departed "
                f"with inflight[{name}]={count}, total={self._inflight_total}"
            )
        self._inflight[name] = count - 1
        self._inflight_total -= 1
        self.metrics.record_queue_depth(self.engine.now, self._inflight_total)

    def _release_stage(
        self, job: JobInstance, stage_index: int, predecessor_missed: bool
    ) -> None:
        if job.aborted:
            return
        spec = job.task.stages[stage_index]
        priority = promote_if_predecessor_missed(
            initial_priority(stage_index, job.task.num_stages),
            predecessor_missed and self.enable_medium_promotion,
        )
        deadline = job.stage_deadlines[stage_index]
        record = self.metrics.stage_released(
            job.task.name, job.index, stage_index, self.engine.now, deadline
        )
        record.priority = priority.name
        stage = StageInstance(spec, job, deadline, priority, record)
        job.stages[stage_index] = stage
        work = spec.composite.base_time
        if self.work_jitter_cv > 0.0:
            work *= 1.0 + self.work_jitter_cv * self._rng.uniform(-1.0, 1.0)
        kernel = StageKernel(
            label=stage.label,
            curve=spec.composite,
            work=work,
            width_demand=spec.width_demand,
            deadline=deadline,
            priority=priority,
            payload=stage,
        )
        stage.kernel = kernel
        context = self.select_context(kernel)
        kernel.setup_remaining = self.reconfig.setup_time(context, job.task.name)
        record.context_id = context.context_id
        if self.trace is not None:
            self.trace.record(
                self.engine.now,
                STAGE_RELEASE,
                stage=stage.label,
                context=context.context_id,
                priority=priority.name,
                deadline=deadline,
            )
        self.device.submit(kernel, context)

    def _on_kernel_complete(self, kernel: StageKernel) -> None:
        stage: StageInstance = kernel.payload
        now = self.engine.now
        stage.finish_time = now
        if stage.record is not None:
            stage.record.finish_time = now
        job = stage.job
        if job.aborted:
            return
        if stage.spec.index == job.task.num_stages - 1:
            job.completed = True
            self.metrics.job_completed(job.task.name, job.index, now)
            self._job_departed(job)
            if self.trace is not None:
                self.trace.record(
                    now, JOB_COMPLETE, task=job.task.name, job=job.index
                )
        else:
            missed = now > stage.absolute_deadline
            self._release_stage(job, stage.spec.index + 1, predecessor_missed=missed)

    # ------------------------------------------------------------------
    # Shedding support
    # ------------------------------------------------------------------
    def abort_job(self, job: JobInstance) -> None:
        """Shed a job: abort its pending/resident stages.

        All of the job's in-flight stages are aborted as one device change
        point (a single settle pass), not one per stage.  The job's metrics
        record stays unfinished, so it counts as a deadline miss once its
        deadline passes.
        """
        if job.finished:
            return
        job.aborted = True
        kernels = [
            stage.kernel
            for stage in job.stages.values()
            if stage.finish_time is None and stage.kernel is not None
        ]
        if kernels:
            self.device.abort_many(kernels)
        self._job_departed(job)
        if self.trace is not None:
            self.trace.record(
                self.engine.now, JOB_SHED, task=job.task.name, job=job.index
            )

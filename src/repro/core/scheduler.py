"""Online scheduling plumbing shared by SGPRS and the naive baseline.

``SchedulerBase`` owns the job lifecycle: periodic releases, per-release
absolute deadline assignment (Section IV-B1), stage-by-stage execution on
the GPU device, and metrics recording.  Concrete schedulers specialise

* :meth:`SchedulerBase.select_context` — the context-assignment policy;
* :meth:`SchedulerBase.on_job_release` — admission/shedding behaviour;
* the reconfiguration policy — what a partition switch costs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.deadlines import absolute_stage_deadlines
from repro.core.priority import initial_priority, promote_if_predecessor_missed
from repro.core.task import StageSpec, TaskSet, TaskSpec
from repro.gpu.context import SimContext
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.gpu.mps import ReconfigurationPolicy, ZeroConfigPool
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector, StageRecord
from repro.sim.trace import TraceRecorder


class StageInstance:
    """One released stage of one job."""

    def __init__(
        self,
        spec: StageSpec,
        job: "JobInstance",
        absolute_deadline: float,
        priority: PriorityLevel,
        record: Optional[StageRecord] = None,
    ) -> None:
        self.spec = spec
        self.job = job
        self.absolute_deadline = absolute_deadline
        self.priority = priority
        self.record = record
        self.kernel: Optional[StageKernel] = None
        self.finish_time: Optional[float] = None

    @property
    def label(self) -> str:
        """Stable identifier, e.g. ``"cam3/j12/s4"``."""
        return f"{self.job.task.name}/j{self.job.index}/s{self.spec.index}"


class JobInstance:
    """One periodic release of a task."""

    def __init__(
        self, task: TaskSpec, index: int, release_time: float
    ) -> None:
        self.task = task
        self.index = index
        self.release_time = release_time
        self.absolute_deadline = release_time + task.relative_deadline
        self.stage_deadlines: List[float] = absolute_stage_deadlines(
            task, release_time
        )
        self.stages: Dict[int, StageInstance] = {}
        self.completed = False
        self.aborted = False

    @property
    def finished(self) -> bool:
        """Whether the job is out of the system (done or shed)."""
        return self.completed or self.aborted


class SchedulerBase:
    """Common machinery for online schedulers.

    Parameters
    ----------
    engine / device:
        The simulation substrate; the scheduler installs itself as the
        device's completion callback.
    task_set:
        Offline-prepared tasks (stages, WCETs, virtual deadlines).
    metrics:
        Collector for job/stage records.
    reconfig:
        Partition reconfiguration cost policy; defaults to the
        zero-configuration pool.
    trace:
        Optional trace recorder.  The scheduler emits kinds
        ``job_release``, ``job_skip`` (a release dropped at the source
        because the task's previous job was still in flight — see
        :meth:`admit_job`), ``job_complete``, ``job_shed`` (aborted via
        :meth:`abort_job`) and ``stage_release``; the device layer adds
        ``kernel_start``, ``kernel_done`` and ``allocation``.
    horizon:
        Releases are only scheduled strictly before this simulated time.
    work_jitter_cv:
        Relative half-width of per-stage execution-time jitter: each stage
        instance's work is the nominal work times a uniform factor in
        ``[1 - cv, 1 + cv]``.  Models the run-to-run variability real GPU
        kernels show (cache state, DRAM arbitration, OS noise); the offline
        WCET margin is meant to cover it.  0 gives fully deterministic
        execution.
    seed:
        Seed for the jitter stream; runs are reproducible for a fixed seed.
    """

    #: Subclasses give themselves a short name for reports.
    name = "base"

    #: Ablation switch: when ``True`` every release is admitted even if the
    #: task's previous job is still in flight (non-blocking clients with an
    #: unbounded queue).
    admit_all_releases = False

    #: Ablation switch: the paper's MEDIUM promotion of late stages
    #: (Section IV-B3).  Disabled in the ablation benchmark.
    enable_medium_promotion = True

    def __init__(
        self,
        engine: SimulationEngine,
        device: GpuDevice,
        task_set: TaskSet,
        metrics: MetricsCollector,
        reconfig: Optional[ReconfigurationPolicy] = None,
        trace: Optional[TraceRecorder] = None,
        horizon: float = float("inf"),
        work_jitter_cv: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= work_jitter_cv < 1.0:
            raise ValueError(
                f"work_jitter_cv must be in [0, 1), got {work_jitter_cv}"
            )
        self.engine = engine
        self.device = device
        self.task_set = task_set
        self.metrics = metrics
        self.reconfig = reconfig if reconfig is not None else ZeroConfigPool()
        self.trace = trace
        self.horizon = horizon
        self.work_jitter_cv = work_jitter_cv
        self._rng = random.Random(seed)
        self._job_counters: Dict[str, int] = {}
        self._latest_job: Dict[str, JobInstance] = {}
        device.on_kernel_complete = self._on_kernel_complete

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def select_context(self, kernel: StageKernel) -> SimContext:
        """Choose the context a released stage is assigned to."""
        raise NotImplementedError

    def admit_job(
        self, job: JobInstance, previous: Optional[JobInstance]
    ) -> bool:
        """Whether a released job enters the system.

        The default models the paper's deployment: each task is a periodic
        client thread issuing a *blocking* inference call, so while the
        previous frame is still in flight the next release is skipped (the
        frame is dropped at the source).  A skipped job stays in the metrics
        as released-but-never-finished, i.e. a deadline miss.

        Subclasses may override (``admit_all_releases = True`` disables the
        skip for ablations, letting backlogs snowball).
        """
        if self.admit_all_releases:
            return True
        return previous is None or previous.finished

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first release of every task."""
        for task in self.task_set:
            if task.release_offset < self.horizon:
                self.engine.schedule_at(
                    task.release_offset,
                    lambda t=task: self._release_job(t),
                    tag=f"release:{task.name}",
                )

    def _release_job(self, task: TaskSpec) -> None:
        index = self._job_counters.get(task.name, 0)
        self._job_counters[task.name] = index + 1
        now = self.engine.now
        job = JobInstance(task, index, now)
        self.metrics.job_released(task.name, index, now, job.absolute_deadline)
        if self.trace is not None:
            self.trace.record(now, "job_release", task=task.name, job=index)
        previous = self._latest_job.get(task.name)
        if self.admit_job(job, previous):
            self._latest_job[task.name] = job
            self._release_stage(job, 0, predecessor_missed=False)
        else:
            job.aborted = True
            if self.trace is not None:
                self.trace.record(now, "job_skip", task=task.name, job=index)
        next_release = now + task.period
        if next_release < self.horizon:
            self.engine.schedule_at(
                next_release,
                lambda t=task: self._release_job(t),
                tag=f"release:{task.name}",
            )

    def _release_stage(
        self, job: JobInstance, stage_index: int, predecessor_missed: bool
    ) -> None:
        if job.aborted:
            return
        spec = job.task.stages[stage_index]
        priority = promote_if_predecessor_missed(
            initial_priority(stage_index, job.task.num_stages),
            predecessor_missed and self.enable_medium_promotion,
        )
        deadline = job.stage_deadlines[stage_index]
        record = self.metrics.stage_released(
            job.task.name, job.index, stage_index, self.engine.now, deadline
        )
        record.priority = priority.name
        stage = StageInstance(spec, job, deadline, priority, record)
        job.stages[stage_index] = stage
        work = spec.composite.base_time
        if self.work_jitter_cv > 0.0:
            work *= 1.0 + self.work_jitter_cv * self._rng.uniform(-1.0, 1.0)
        kernel = StageKernel(
            label=stage.label,
            curve=spec.composite,
            work=work,
            width_demand=spec.width_demand,
            deadline=deadline,
            priority=priority,
            payload=stage,
        )
        stage.kernel = kernel
        context = self.select_context(kernel)
        kernel.setup_remaining = self.reconfig.setup_time(context, job.task.name)
        record.context_id = context.context_id
        if self.trace is not None:
            self.trace.record(
                self.engine.now,
                "stage_release",
                stage=stage.label,
                context=context.context_id,
                priority=priority.name,
                deadline=deadline,
            )
        self.device.submit(kernel, context)

    def _on_kernel_complete(self, kernel: StageKernel) -> None:
        stage: StageInstance = kernel.payload
        now = self.engine.now
        stage.finish_time = now
        if stage.record is not None:
            stage.record.finish_time = now
        job = stage.job
        if job.aborted:
            return
        if stage.spec.index == job.task.num_stages - 1:
            job.completed = True
            self.metrics.job_completed(job.task.name, job.index, now)
            if self.trace is not None:
                self.trace.record(
                    now, "job_complete", task=job.task.name, job=job.index
                )
        else:
            missed = now > stage.absolute_deadline
            self._release_stage(job, stage.spec.index + 1, predecessor_missed=missed)

    # ------------------------------------------------------------------
    # Shedding support
    # ------------------------------------------------------------------
    def abort_job(self, job: JobInstance) -> None:
        """Shed a job: abort its pending/resident stages.

        All of the job's in-flight stages are aborted as one device change
        point (a single settle pass), not one per stage.  The job's metrics
        record stays unfinished, so it counts as a deadline miss once its
        deadline passes.
        """
        if job.finished:
            return
        job.aborted = True
        kernels = [
            stage.kernel
            for stage in job.stages.values()
            if stage.finish_time is None and stage.kernel is not None
        ]
        if kernels:
            self.device.abort_many(kernels)
        if self.trace is not None:
            self.trace.record(
                self.engine.now, "job_shed", task=job.task.name, job=job.index
            )

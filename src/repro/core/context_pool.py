"""Context pool configuration (paper Section II: ``CP = {cp_1..cp_np}``).

A pool has ``np`` contexts of ``sm`` SMs each.  The evaluation
over-subscribes the pool: total nominal SMs = ``os * total_sms`` for
over-subscription level ``os`` in {1.0, 1.5, 2.0}, split evenly across the
``np`` contexts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gpu.context import SimContext
from repro.gpu.spec import GpuDeviceSpec


@dataclass(frozen=True)
class ContextPoolConfig:
    """Sizing of a context pool.

    Attributes
    ----------
    num_contexts:
        ``np`` — number of pre-created CUDA contexts.
    sms_per_context:
        ``sm`` — nominal SMs of each context (may be fractional, mirroring
        MPS percentage-based partitioning).
    allow_stream_borrowing:
        Whether idle streams of the other hardware class may be used
        (see :class:`repro.gpu.context.SimContext`).
    """

    num_contexts: int
    sms_per_context: float
    allow_stream_borrowing: bool = True

    def __post_init__(self) -> None:
        if self.num_contexts < 1:
            raise ValueError(f"num_contexts must be >= 1, got {self.num_contexts}")
        if self.sms_per_context <= 0:
            raise ValueError(
                f"sms_per_context must be positive, got {self.sms_per_context}"
            )

    @property
    def total_nominal_sms(self) -> float:
        """Summed nominal SMs of the pool."""
        return self.num_contexts * self.sms_per_context

    def oversubscription(self, spec: GpuDeviceSpec) -> float:
        """Pool over-subscription level relative to the physical device."""
        return self.total_nominal_sms / spec.total_sms

    @classmethod
    def from_oversubscription(
        cls,
        num_contexts: int,
        oversubscription: float,
        spec: GpuDeviceSpec,
        allow_stream_borrowing: bool = True,
    ) -> "ContextPoolConfig":
        """Build the paper's pool: ``sm = os * total_sms / np``.

        ``SGPRS_1.5`` with ``np=2`` on 68 SMs gives two 51-SM contexts.
        """
        if oversubscription <= 0:
            raise ValueError(
                f"oversubscription must be positive, got {oversubscription}"
            )
        return cls(
            num_contexts=num_contexts,
            sms_per_context=oversubscription * spec.total_sms / num_contexts,
            allow_stream_borrowing=allow_stream_borrowing,
        )


def build_contexts(
    config: ContextPoolConfig, spec: GpuDeviceSpec
) -> List[SimContext]:
    """Instantiate the pool's simulated contexts."""
    return [
        SimContext(
            context_id=index,
            nominal_sms=config.sms_per_context,
            high_streams=spec.high_priority_streams,
            low_streams=spec.low_priority_streams,
            allow_stream_borrowing=config.allow_stream_borrowing,
        )
        for index in range(config.num_contexts)
    ]

"""Virtual and absolute deadline assignment (Sections IV-A2 and IV-B1).

Offline, each stage receives a *relative virtual deadline* ``D_i^j``: a slice
of the task's relative deadline ``D_i`` proportional to the stage's share of
the task WCET.  Online, at each job release the stages' *absolute* deadlines
``d_i^j`` are laid out cumulatively from the release time, so the last
stage's absolute virtual deadline coincides with the job's absolute
deadline.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.task import TaskSpec


def assign_virtual_deadlines(wcets: Sequence[float], relative_deadline: float) -> List[float]:
    """Split ``relative_deadline`` proportionally to stage WCETs.

    ``D_i^j = D_i * C_i^j / sum_k C_i^k``.  The returned values sum to the
    task deadline exactly (the last slice absorbs float residue).

    Raises
    ------
    ValueError
        On empty/non-positive WCETs or a non-positive deadline.
    """
    if not wcets:
        raise ValueError("wcets must be non-empty")
    if any(c <= 0 for c in wcets):
        raise ValueError(f"all WCETs must be positive, got {list(wcets)}")
    if relative_deadline <= 0:
        raise ValueError(f"deadline must be positive, got {relative_deadline}")
    total = sum(wcets)
    slices = [relative_deadline * c / total for c in wcets]
    # Absorb rounding residue into the final slice so the sum is exact.
    slices[-1] = relative_deadline - sum(slices[:-1])
    return slices


def apply_virtual_deadlines(task: TaskSpec) -> None:
    """Assign ``virtual_deadline`` on every stage of ``task`` in place."""
    slices = assign_virtual_deadlines(
        [stage.wcet for stage in task.stages], task.relative_deadline
    )
    for stage, value in zip(task.stages, slices):
        stage.virtual_deadline = value


def absolute_stage_deadlines(task: TaskSpec, release_time: float) -> List[float]:
    """Absolute virtual deadlines of one job's stages (Section IV-B1).

    ``d_i^j = release + D_i^1 + ... + D_i^j``; the last equals the job's
    absolute deadline.

    Raises
    ------
    ValueError
        If the offline phase has not assigned virtual deadlines yet.
    """
    deadlines: List[float] = []
    cumulative = release_time
    for stage in task.stages:
        if stage.virtual_deadline is None:
            raise ValueError(
                f"stage {stage.name!r} has no virtual deadline; "
                "run the offline phase first"
            )
        cumulative += stage.virtual_deadline
        deadlines.append(cumulative)
    return deadlines

"""One-call simulation runs: assemble engine, device, scheduler; run; report.

This is the layer the examples, benchmarks and sweep harness build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Type, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.arrivals import ArrivalProcess

from repro.core.admission import AdmissionPolicy, resolve_admission
from repro.core.context_pool import ContextPoolConfig, build_contexts
from repro.core.naive import NaiveScheduler, build_naive_contexts
from repro.core.scheduler import SchedulerBase
from repro.core.sequential import SequentialScheduler, build_sequential_context
from repro.core.sgprs import SgprsScheduler
from repro.core.task import TaskSet
from repro.gpu.allocator import AllocationParams
from repro.gpu.device import REARM_MODES, GpuDevice
from repro.gpu.spec import RTX_2080_TI, GpuDeviceSpec
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector
from repro.sim.trace import TRACE_BACKENDS, TraceRecorder, make_trace_recorder


@dataclass
class RunConfig:
    """Configuration of one simulation run.

    Attributes
    ----------
    pool:
        Context pool sizing.
    scheduler:
        Scheduler class (``SgprsScheduler`` or ``NaiveScheduler``).
    duration:
        Simulated seconds.
    warmup:
        Seconds excluded from steady-state metrics.
    spec:
        Device architecture (defaults to the paper's RTX 2080 Ti).
    allocation:
        Allocation model constants.
    record_trace:
        Whether to keep a full execution trace (large runs disable it).
    trace_backend:
        Recorder implementation when tracing
        (:data:`repro.sim.trace.TRACE_BACKENDS`): ``"list"`` (default)
        keeps one dataclass per event, ``"columnar"`` the array-backed
        :class:`~repro.sim.trace_columnar.ColumnarTrace` — same query
        results, a fraction of the memory, serialisable via
        :mod:`repro.sim.trace_io`.
    work_jitter_cv / seed:
        Per-stage execution-time jitter (see
        :class:`repro.core.scheduler.SchedulerBase`) and its seed.
    rearm_mode:
        Completion re-arming strategy of the device
        (:data:`repro.gpu.device.REARM_MODES`): ``"incremental"``
        (default), the reference ``"full"`` re-arm-everything mode, or
        ``"vectorised"`` (the structure-of-arrays settle core with a
        single sentinel completion event; requires numpy).  All three
        produce bit-identical traces; ``"full"`` exists for equivalence
        tests and as the engine benchmark baseline, ``"vectorised"`` wins
        in the ceiling-bound (aggregate-cap saturated) regime.
    arrival:
        Arrival process driving releases: a spec string resolved through
        the arrivals registry (``"poisson"``, ``"mmpp:burst=6"``, ...),
        an :class:`~repro.workloads.arrivals.ArrivalProcess` instance, or
        ``""`` for the strictly periodic default (bit-identical to the
        legacy release loop).
    admission:
        Admission policy: a spec string resolved through the admission
        registry (``"reject"``, ``"queue:depth=2"``, ...), an
        :class:`~repro.core.admission.AdmissionPolicy` instance, or
        ``""`` for the legacy skip-if-in-flight hook.
    """

    pool: ContextPoolConfig
    scheduler: Type[SchedulerBase] = SgprsScheduler
    duration: float = 10.0
    warmup: float = 2.0
    spec: GpuDeviceSpec = RTX_2080_TI
    allocation: AllocationParams = field(default_factory=AllocationParams)
    record_trace: bool = False
    trace_backend: str = "list"
    work_jitter_cv: float = 0.0
    seed: int = 0
    rearm_mode: str = "incremental"
    arrival: Union[str, "ArrivalProcess"] = ""
    admission: Union[str, AdmissionPolicy] = ""

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not 0 <= self.warmup < self.duration:
            raise ValueError(
                f"warmup must be in [0, duration), got {self.warmup}"
            )
        if self.rearm_mode not in REARM_MODES:
            raise ValueError(
                f"rearm_mode must be one of {REARM_MODES}, got "
                f"{self.rearm_mode!r}"
            )
        if self.trace_backend not in TRACE_BACKENDS:
            raise ValueError(
                f"trace_backend must be one of {TRACE_BACKENDS}, got "
                f"{self.trace_backend!r}"
            )


@dataclass
class RunResult:
    """Outcome of one simulation run.

    ``total_fps`` and ``dmr`` are the paper's two metrics over the
    steady-state window.
    """

    config: RunConfig
    total_fps: float
    dmr: float
    per_task_fps: Dict[str, float]
    released: int
    completed: int
    utilization: float
    mean_pressure: float
    metrics: MetricsCollector
    #: Either recorder backend (same query API); see RunConfig.trace_backend.
    trace: Optional[TraceRecorder]
    goodput: float = 0.0
    rejection_rate: float = 0.0
    rejected: int = 0
    p99_response: Optional[float] = None
    p999_response: Optional[float] = None
    mean_queue_depth: float = 0.0
    max_queue_depth: int = 0

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.config.scheduler.name}: fps={self.total_fps:.1f} "
            f"dmr={self.dmr * 100:.2f}% util={self.utilization * 100:.1f}%"
        )

    def metrics_summary(self) -> Dict[str, float]:
        """The slim scalar record the sweep harness ships across processes.

        Deliberately excludes ``metrics`` and ``trace`` (megabytes on long
        runs) and ``config`` (not JSON-serialisable); this is the whole
        payload a sweep point contributes to figures and caches.
        """
        return {
            "total_fps": self.total_fps,
            "dmr": self.dmr,
            "utilization": self.utilization,
            "mean_pressure": self.mean_pressure,
            "released": self.released,
            "completed": self.completed,
            "goodput": self.goodput,
            "rejection_rate": self.rejection_rate,
            "rejected": self.rejected,
            "p99_response": self.p99_response,
            "p999_response": self.p999_response,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
        }


def run_simulation(task_set: TaskSet, config: RunConfig) -> RunResult:
    """Execute one run and return its steady-state metrics."""
    task_set.validate()
    engine = SimulationEngine()
    trace = make_trace_recorder(
        config.trace_backend, enabled=config.record_trace
    )
    if issubclass(config.scheduler, NaiveScheduler):
        contexts = build_naive_contexts(config.pool, config.spec)
    elif issubclass(config.scheduler, SequentialScheduler):
        contexts = build_sequential_context(config.spec)
    else:
        contexts = build_contexts(config.pool, config.spec)
    device = GpuDevice(
        engine,
        config.spec,
        contexts,
        config.allocation,
        trace=trace if config.record_trace else None,
        rearm=config.rearm_mode,
    )
    metrics = MetricsCollector(warmup=config.warmup)
    arrivals = None
    if config.arrival:
        from repro.workloads.arrivals import resolve_arrival

        arrivals = resolve_arrival(config.arrival)
    admission = resolve_admission(config.admission)
    scheduler = config.scheduler(
        engine,
        device,
        task_set,
        metrics,
        trace=trace if config.record_trace else None,
        horizon=config.duration,
        work_jitter_cv=config.work_jitter_cv,
        seed=config.seed,
        arrivals=arrivals,
        admission=admission,
    )
    scheduler.start()
    engine.run_until(config.duration)
    now = engine.now
    return RunResult(
        config=config,
        total_fps=metrics.total_fps(now),
        dmr=metrics.deadline_miss_rate(now),
        per_task_fps=metrics.per_task_fps(now),
        released=metrics.released_count(),
        completed=metrics.completed_count(),
        utilization=device.utilization(now),
        mean_pressure=device.mean_pressure(now),
        metrics=metrics,
        trace=trace if config.record_trace else None,
        goodput=metrics.goodput(now),
        rejection_rate=metrics.rejection_rate(now),
        rejected=metrics.rejected_count(),
        p99_response=metrics.response_time_percentile(0.99),
        p999_response=metrics.response_time_percentile(0.999),
        mean_queue_depth=metrics.mean_queue_depth(now),
        max_queue_depth=metrics.max_queue_depth(now),
    )

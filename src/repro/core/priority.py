"""Two-level priority assignment and the medium promotion rule.

Offline (Section IV-A1): the *last* stage of each task is HIGH priority,
all earlier stages LOW — finishing jobs that are almost done "helps to meet
more deadlines".

Online (Section IV-B3): a LOW stage whose *preceding stage missed its
(virtual) deadline* is promoted to MEDIUM, giving jobs that are already
running late a boost without letting them displace the HIGH final stages.
"""

from __future__ import annotations

from repro.gpu.kernel import PriorityLevel


def initial_priority(stage_index: int, num_stages: int) -> PriorityLevel:
    """Offline two-level assignment: last stage HIGH, the rest LOW.

    Raises
    ------
    ValueError
        If the index is out of range.
    """
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    if not 0 <= stage_index < num_stages:
        raise ValueError(
            f"stage_index {stage_index} out of range for {num_stages} stages"
        )
    if stage_index == num_stages - 1:
        return PriorityLevel.HIGH
    return PriorityLevel.LOW


def promote_if_predecessor_missed(
    priority: PriorityLevel, predecessor_missed: bool
) -> PriorityLevel:
    """Apply the online MEDIUM promotion rule.

    Only LOW stages are promoted; HIGH stages stay HIGH, and an already
    promoted MEDIUM stage stays MEDIUM.
    """
    if predecessor_missed and priority is PriorityLevel.LOW:
        return PriorityLevel.MEDIUM
    return priority

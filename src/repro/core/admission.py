"""Pluggable admission control for open-system workloads.

The scheduler historically hardcoded one overload response: the paper's
*skip-if-previous-in-flight* rule (a periodic client issuing a blocking
inference call drops the next frame at the source while the previous one
is still running).  Open-system arrival processes
(:mod:`repro.workloads.arrivals`) make overload a first-class regime, and
production serving stacks answer it with an *admission controller* — so
the rule is factored into a policy object the scheduler consults on every
release.

Three admission outcomes exist, and they are deliberately distinct in the
trace and the metrics:

``ADMIT``
    The job enters the system and its first stage is released.
``SKIP``
    The release is dropped *at the source* (trace kind ``job_skip``).
    This models a blocking client that never handed the frame over; the
    job still counts as released-but-never-finished, i.e. a deadline
    miss.  This is the paper's default behaviour.
``REJECT``
    The *admission controller* turned the job away (trace kind
    ``job_reject``).  The client was told "no" immediately, so the job
    counts toward the **rejection rate** and is excluded from the
    deadline-miss rate — a deliberate load-shedding decision, not a
    missed frame.

Policies are addressable by spec string (``"queue:depth=4"``), exactly
like arrival processes and zoo mixes, so sweeps can put admission control
on a grid axis::

    python -m repro sweep --arrival mmpp:burst=6 --admission queue:depth=2

Policies must be stateless (all run state — the previous job, the
per-task in-flight count — is passed into :meth:`AdmissionPolicy.decide`)
and picklable, so one instance can serve any number of runs and travel to
``multiprocessing`` workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple, Union


class AdmissionDecision(Enum):
    """Outcome of one admission check (see module docstring)."""

    ADMIT = "admit"
    SKIP = "skip"
    REJECT = "reject"


class AdmissionPolicy:
    """Decides whether a released job enters the system.

    Subclasses implement :meth:`decide`; they must be stateless with
    respect to the run (the scheduler owns all lifecycle state) and
    picklable.
    """

    #: Registry / display name; concrete policies override it.
    name = "base"

    def decide(
        self, job, previous, inflight: int
    ) -> AdmissionDecision:
        """Admission decision for ``job``.

        Parameters
        ----------
        job:
            The freshly released :class:`~repro.core.scheduler.JobInstance`.
        previous:
            The task's most recently *admitted* job, or ``None``.
        inflight:
            Number of admitted-but-unfinished jobs of this task
            (including ``previous`` when it is still running).
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable summary (CLI listings)."""
        return self.name


class SkipIfBusy(AdmissionPolicy):
    """The paper's default: drop the frame at the source while busy.

    Equivalent to the scheduler's historical hardcoded rule — a release
    whose predecessor is still in flight is skipped (``job_skip``) and
    counts as a deadline miss.
    """

    name = "skip"

    def decide(self, job, previous, inflight: int) -> AdmissionDecision:
        if previous is None or previous.finished:
            return AdmissionDecision.ADMIT
        return AdmissionDecision.SKIP


class AdmitAll(AdmissionPolicy):
    """Admit every release (non-blocking clients, unbounded backlog).

    The ablation mode ``admit_all_releases`` expressed as a policy:
    queues snowball freely under overload.
    """

    name = "admit_all"

    def decide(self, job, previous, inflight: int) -> AdmissionDecision:
        return AdmissionDecision.ADMIT


class RejectIfBusy(AdmissionPolicy):
    """Turn releases away while the task's previous job is in flight.

    The same overload condition as :class:`SkipIfBusy`, but the refusal
    is an admission-controller decision: the job is recorded as
    *rejected* (``job_reject``, rejection rate) instead of silently
    dropped into the deadline-miss count.
    """

    name = "reject"

    def decide(self, job, previous, inflight: int) -> AdmissionDecision:
        if previous is None or previous.finished:
            return AdmissionDecision.ADMIT
        return AdmissionDecision.REJECT


@dataclass(frozen=True)
class BoundedQueue(AdmissionPolicy):
    """Admit up to ``depth`` in-flight jobs per task, then reject.

    ``depth`` counts admitted-but-unfinished jobs, including the one
    currently executing, so ``depth=1`` behaves like :class:`RejectIfBusy`
    and ``depth`` -> infinity behaves like :class:`AdmitAll`.  The
    backlog this admits is what the queue-depth metrics
    (:meth:`~repro.sim.metrics.MetricsCollector.mean_queue_depth` /
    ``max_queue_depth``) observe.
    """

    depth: int = 4

    name = "queue"

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {self.depth}")

    def decide(self, job, previous, inflight: int) -> AdmissionDecision:
        if inflight < self.depth:
            return AdmissionDecision.ADMIT
        return AdmissionDecision.REJECT

    def describe(self) -> str:
        return f"{self.name}(depth={self.depth})"


# ----------------------------------------------------------------------
# Spec strings and the registry
# ----------------------------------------------------------------------
def parse_spec(spec: str) -> Tuple[str, Dict[str, Union[int, float, str]]]:
    """Split ``"name:key=val,key=val"`` into a name and coerced params.

    Values are coerced ``int`` -> ``float`` -> ``str`` (first parse that
    succeeds).  The same syntax addresses arrival processes
    (:func:`repro.workloads.arrivals.resolve_arrival`) and admission
    policies, so both sit naturally on grid axes and CLI flags.
    """
    name, _, raw = spec.partition(":")
    name = name.strip()
    if not name:
        raise ValueError(f"empty name in spec {spec!r}")
    params: Dict[str, Union[int, float, str]] = {}
    if raw:
        for part in raw.split(","):
            key, eq, value = part.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ValueError(
                    f"malformed parameter {part!r} in spec {spec!r} "
                    f"(expected key=value)"
                )
            value = value.strip()
            coerced: Union[int, float, str]
            try:
                coerced = int(value)
            except ValueError:
                try:
                    coerced = float(value)
                except ValueError:
                    coerced = value
            params[key] = coerced
    return name, params


@dataclass(frozen=True)
class _RegisteredPolicy:
    key: str
    factory: Callable[..., AdmissionPolicy]
    description: str


_ADMISSION_REGISTRY: Dict[str, _RegisteredPolicy] = {}


def register_admission(
    key: str, factory: Callable[..., AdmissionPolicy], description: str = ""
) -> None:
    """Register an admission-policy factory under ``key``.

    ``factory`` is called with the spec string's keyword parameters, so
    a plain policy class with keyword-only configuration registers
    directly (``register_admission("queue", BoundedQueue, ...)``).
    """
    if not key:
        raise ValueError("admission policy key must be non-empty")
    _ADMISSION_REGISTRY[key] = _RegisteredPolicy(key, factory, description)


def list_admission_policies() -> List[Tuple[str, str]]:
    """``(key, description)`` pairs in registration order."""
    return [(p.key, p.description) for p in _ADMISSION_REGISTRY.values()]


def resolve_admission(
    spec: Union[str, AdmissionPolicy, None]
) -> Optional[AdmissionPolicy]:
    """Build a policy from a spec string (``""``/``None`` -> ``None``).

    ``None`` means "the scheduler default" — the legacy
    :meth:`~repro.core.scheduler.SchedulerBase.admit_job` hook, whose
    stock behaviour matches :class:`SkipIfBusy`.  Policy instances pass
    through unchanged.
    """
    if spec is None or isinstance(spec, AdmissionPolicy):
        return spec
    if not spec:
        return None
    name, params = parse_spec(spec)
    try:
        registered = _ADMISSION_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown admission policy {name!r}; known: "
            f"{sorted(_ADMISSION_REGISTRY)}"
        ) from None
    try:
        return registered.factory(**params)
    except TypeError as error:
        raise ValueError(
            f"bad parameters for admission policy {name!r}: {error}"
        ) from None


register_admission(
    "skip",
    SkipIfBusy,
    "drop releases at the source while the previous job runs (default)",
)
register_admission(
    "admit_all", AdmitAll, "admit every release; backlogs grow unbounded"
)
register_admission(
    "reject",
    RejectIfBusy,
    "reject releases while the previous job runs (counts rejections)",
)
register_admission(
    "queue",
    BoundedQueue,
    "admit up to depth=N in-flight jobs per task, then reject",
)

"""Task model (paper Section II).

A task set ``S = {tau_1 .. tau_|S|}``; each task is a DNN whose nodes are
*stages* (sub-tasks).  ``C_i`` / ``C_i^j`` are the WCETs of the task and its
stages, ``D_i`` the task's relative deadline (given), and ``D_i^j`` the
stages' *virtual* relative deadlines (derived offline, Section IV-A2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.dnn.graph import LayerGraph
from repro.speedup.composite import CompositeWorkload


@dataclass
class StageSpec:
    """Offline description of one stage (sub-task) of a task.

    Attributes
    ----------
    index:
        Position in the task's stage sequence (0-based).
    name:
        Label, e.g. ``"resnet18/stage2"``.
    composite:
        Cost model of the stage's operator slice; its ``speedup`` method is
        the rate curve of the stage's kernels.
    wcet:
        Measured worst-case execution time at the pool's nominal partition
        size (``C_i^j``).
    width_demand:
        Useful parallel width of the stage's kernels (SMs).
    virtual_deadline:
        Relative virtual deadline ``D_i^j`` (seconds), assigned offline
        proportionally to WCET share.  ``None`` until assigned.
    """

    index: int
    name: str
    composite: CompositeWorkload
    wcet: float
    width_demand: float
    virtual_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"stage index must be >= 0, got {self.index}")
        if self.wcet <= 0:
            raise ValueError(f"stage {self.name!r}: wcet must be positive")
        if self.width_demand < 1:
            raise ValueError(f"stage {self.name!r}: width_demand must be >= 1")

    @property
    def work(self) -> float:
        """Parallelisable work in single-SM seconds."""
        return self.composite.total_work


@dataclass
class TaskSpec:
    """One periodic DNN inference task (``tau_i``).

    Attributes
    ----------
    name:
        Unique task name.
    graph:
        The task's network (DAG of operators).
    stages:
        Ordered stage specs (``tau_i^j``); populated by the offline phase.
    period:
        Release period in seconds (e.g. 1/30 for a 30 fps camera).
    relative_deadline:
        ``D_i``; defaults to the period (implicit deadline) when ``None``
        is passed to the constructor helpers.
    release_offset:
        Phase of the first release (staggered offsets avoid the synchronous
        worst-case burst; the workload generator sets them).
    """

    name: str
    graph: LayerGraph
    period: float
    relative_deadline: float
    stages: List[StageSpec] = field(default_factory=list)
    release_offset: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.period <= 0:
            raise ValueError(f"task {self.name!r}: period must be positive")
        if self.relative_deadline <= 0:
            raise ValueError(f"task {self.name!r}: deadline must be positive")
        if self.release_offset < 0:
            raise ValueError(f"task {self.name!r}: offset must be >= 0")

    @property
    def num_stages(self) -> int:
        """Number of stages the task was divided into."""
        return len(self.stages)

    @property
    def total_wcet(self) -> float:
        """``C_i``: sum of stage WCETs at the nominal partition size."""
        return sum(stage.wcet for stage in self.stages)

    @property
    def fps(self) -> float:
        """Frame rate implied by the period."""
        return 1.0 / self.period

    def utilization(self) -> float:
        """WCET over period — the task's demand on one nominal partition."""
        return self.total_wcet / self.period

    def validate(self) -> None:
        """Check stage indices and virtual deadlines are consistent.

        Raises
        ------
        ValueError
            If stages are missing/unordered or virtual deadlines do not sum
            to the task deadline (within float tolerance).
        """
        if not self.stages:
            raise ValueError(f"task {self.name!r} has no stages")
        for expected, stage in enumerate(self.stages):
            if stage.index != expected:
                raise ValueError(
                    f"task {self.name!r}: stage {expected} has index {stage.index}"
                )
        deadlines = [stage.virtual_deadline for stage in self.stages]
        if any(d is not None for d in deadlines):
            if any(d is None for d in deadlines):
                raise ValueError(
                    f"task {self.name!r}: some stages lack virtual deadlines"
                )
            total = sum(deadlines)
            if abs(total - self.relative_deadline) > 1e-9 * max(
                1.0, self.relative_deadline
            ):
                raise ValueError(
                    f"task {self.name!r}: virtual deadlines sum to {total}, "
                    f"expected {self.relative_deadline}"
                )


class TaskSet:
    """An ordered collection of tasks with unique names."""

    def __init__(self, tasks: Sequence[TaskSpec]) -> None:
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique")
        self.tasks: List[TaskSpec] = list(tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def __getitem__(self, index: int) -> TaskSpec:
        return self.tasks[index]

    def by_name(self, name: str) -> TaskSpec:
        """Look up a task by name."""
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"unknown task {name!r}")

    def total_utilization(self) -> float:
        """Sum of per-task utilizations (nominal-partition WCET basis)."""
        return sum(task.utilization() for task in self.tasks)

    def total_demand_fps(self) -> float:
        """Sum of requested frame rates."""
        return sum(task.fps for task in self.tasks)

    def validate(self) -> None:
        """Validate every task."""
        for task in self.tasks:
            task.validate()

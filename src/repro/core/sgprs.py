"""SGPRS: the paper's online phase (Section IV-B).

Context assignment (IV-B2), in order:

1. a context with an **empty queue** (ties: most free streams, lowest id);
2. among contexts whose estimated completion of this stage **meets its
   deadline**, the one with the **shortest queue**;
3. otherwise the context with the **earliest estimated finish time**.

Stage queuing (IV-B3) — two high- and two low-priority streams per context,
EDF within each priority level, and promotion of LOW stages to MEDIUM when
their predecessor missed its virtual deadline — is implemented by
:class:`repro.gpu.context.SimContext` and
:mod:`repro.core.priority`; this class only picks contexts and sheds stale
work.

Overload behaviour: the shared base class models the paper's deployment —
periodic client threads issuing blocking inference calls — so a release that
arrives while the task's previous frame is still in flight is dropped at the
source (a deadline miss, but no wasted GPU work).  Under SGPRS this yields
the paper's sustained FPS with a gently growing miss rate; the naive
baseline's per-partition FIFO instead pushes every job's waiting time past
the deadline soon after the pivot (the domino effect).
"""

from __future__ import annotations

from typing import List

from repro.core.scheduler import SchedulerBase
from repro.gpu.context import SimContext
from repro.gpu.kernel import StageKernel


class SgprsScheduler(SchedulerBase):
    """Seamless GPU Partitioning Real-time Scheduler."""

    name = "sgprs"

    def select_context(self, kernel: StageKernel) -> SimContext:
        """The paper's three-criteria context assignment."""
        contexts = self.device.contexts
        now = self.engine.now

        empty = [c for c in contexts if c.queue_empty()]
        if empty:
            return max(
                empty,
                key=lambda c: (
                    c.free_stream_count(),
                    -c.context_id,
                ),
            )

        meeting: List[SimContext] = [
            c
            for c in contexts
            if c.estimate_completion(kernel, now) <= kernel.deadline
        ]
        if meeting:
            return min(
                meeting, key=lambda c: (c.queued_count(), c.context_id)
            )

        return min(
            contexts,
            key=lambda c: (c.estimated_finish_time(now), c.context_id),
        )

"""Sequential baseline: what "existing frameworks" do.

The paper's introduction motivates SGPRS with the observation that "coarse
resource allocation and sequential execution in existing frameworks result
in underutilization": a stock PyTorch deployment runs all tenants through
one CUDA context, one inference at a time, on the whole GPU.

This scheduler models exactly that — a useful third point of comparison
(the extension benchmark contrasts it with both SGPRS and the naive
spatial partitioner): it wastes no SMs on partition boundaries, but a
single ResNet18 only reaches ~23x speedup on 68 SMs, so the GPU is heavily
underutilized and total throughput caps near 320 fps.
"""

from __future__ import annotations

from repro.core.context_pool import ContextPoolConfig
from repro.core.scheduler import SchedulerBase
from repro.gpu.context import SimContext
from repro.gpu.kernel import StageKernel
from repro.gpu.spec import GpuDeviceSpec


def build_sequential_context(spec: GpuDeviceSpec) -> list:
    """One full-device context with a single stream (FIFO execution)."""
    return [
        SimContext(
            context_id=0,
            nominal_sms=float(spec.total_sms),
            high_streams=0,
            low_streams=1,
            allow_stream_borrowing=True,
        )
    ]


def sequential_pool_config(spec: GpuDeviceSpec) -> ContextPoolConfig:
    """Pool config matching :func:`build_sequential_context`."""
    return ContextPoolConfig(
        num_contexts=1, sms_per_context=float(spec.total_sms)
    )


class SequentialScheduler(SchedulerBase):
    """Single context, whole GPU, one job at a time, release order.

    Tasks should be prepared with ``num_stages=1`` (frameworks do not
    pipeline stages) and WCETs profiled at the full device width.
    """

    name = "sequential"

    def select_context(self, kernel: StageKernel) -> SimContext:
        """There is only one context."""
        return self.device.contexts[0]

"""The naive baseline: pure spatial partitioning (paper Section V).

"A simple spatial partitioning scheduler that lacks the context switch and
temporal partitioning features":

* tasks are **statically pinned** to contexts (round-robin at admission);
* each job runs as **one monolithic kernel** (no stage division) and a
  context serves **one job at a time** in release order — no concurrent
  streams, no priorities, no EDF (single-stream contexts enforce this);
* every switch between different tasks' jobs pays a **partition
  reconfiguration latency** (:class:`repro.gpu.mps.SpatialReconfig`),
  because the partition must be re-targeted at the incoming task's state —
  this is exactly the cost SGPRS' pre-created pool avoids;
* overload makes every admitted job wait behind all other tasks pinned to
  its partition, so waiting times blow past the deadline for *all* jobs
  soon after the pivot — the paper's "domino effect of deadline misses".

Build its single-stage tasks with ``num_stages=1`` in
:func:`repro.core.profiling.prepare_task` (the workload generators do this)
and single-stream contexts via
:func:`build_naive_contexts`.
"""

from __future__ import annotations

from typing import Dict

from repro.core.context_pool import ContextPoolConfig
from repro.core.scheduler import SchedulerBase
from repro.gpu.context import SimContext
from repro.gpu.kernel import StageKernel
from repro.gpu.mps import SpatialReconfig
from repro.gpu.spec import GpuDeviceSpec


def build_naive_contexts(
    config: ContextPoolConfig, spec: GpuDeviceSpec
) -> list:
    """Single-stream contexts: one job at a time, no temporal partitioning.

    Borrowing is enabled because with a single stream it cannot add any
    concurrency — it merely lets the one stream serve jobs regardless of
    their nominal priority level.
    """
    return [
        SimContext(
            context_id=index,
            nominal_sms=config.sms_per_context,
            high_streams=0,
            low_streams=1,
            allow_stream_borrowing=True,
        )
        for index in range(config.num_contexts)
    ]


class NaiveScheduler(SchedulerBase):
    """Static spatial partitioning with FIFO per-partition service."""

    name = "naive"

    def __init__(self, *args, **kwargs) -> None:
        if "reconfig" not in kwargs or kwargs["reconfig"] is None:
            kwargs["reconfig"] = SpatialReconfig()
        super().__init__(*args, **kwargs)
        self._pinned: Dict[str, SimContext] = {}
        self._pin_tasks()

    def _pin_tasks(self) -> None:
        """Round-robin static task-to-partition assignment."""
        contexts = self.device.contexts
        for index, task in enumerate(self.task_set):
            context = contexts[index % len(contexts)]
            self._pinned[task.name] = context
            if isinstance(self.reconfig, SpatialReconfig):
                self.reconfig.register_task(context, task.name)

    def pinned_context(self, task_name: str) -> SimContext:
        """The partition a task was admitted to."""
        return self._pinned[task_name]

    def select_context(self, kernel: StageKernel) -> SimContext:
        """Static mapping: the job runs where its task is pinned."""
        stage = kernel.payload
        return self._pinned[stage.job.task.name]

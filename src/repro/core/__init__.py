"""SGPRS core: the paper's primary contribution.

Task model (Section II), offline phase (Section IV-A: WCET measurement,
virtual deadlines, two-level priorities), online phase (Section IV-B:
absolute deadlines, context assignment, stage queuing), plus the naive
spatial-partitioning baseline the evaluation compares against.
"""

from repro.core.context_pool import ContextPoolConfig, build_contexts
from repro.core.deadlines import (
    absolute_stage_deadlines,
    assign_virtual_deadlines,
)
from repro.core.naive import NaiveScheduler
from repro.core.priority import initial_priority, promote_if_predecessor_missed
from repro.core.profiling import profile_stage_wcets, prepare_task
from repro.core.runner import RunConfig, RunResult, run_simulation
from repro.core.scheduler import JobInstance, SchedulerBase, StageInstance
from repro.core.sequential import SequentialScheduler
from repro.core.sgprs import SgprsScheduler
from repro.core.task import StageSpec, TaskSpec, TaskSet

__all__ = [
    "StageSpec",
    "TaskSpec",
    "TaskSet",
    "assign_virtual_deadlines",
    "absolute_stage_deadlines",
    "initial_priority",
    "promote_if_predecessor_missed",
    "profile_stage_wcets",
    "prepare_task",
    "ContextPoolConfig",
    "build_contexts",
    "SchedulerBase",
    "JobInstance",
    "StageInstance",
    "SgprsScheduler",
    "SequentialScheduler",
    "NaiveScheduler",
    "RunConfig",
    "RunResult",
    "run_simulation",
]

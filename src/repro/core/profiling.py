"""Offline WCET measurement (Section IV-A2).

"The WCETs of each task and its stages are measured offline."  Here the
measurement runs against the simulator's cost model: a stage's WCET at a
partition of ``sm`` SMs is its composite wall time at that share, padded by
a safety margin for measurement noise (the paper measures on hardware where
run-to-run variance exists; the margin keeps virtual deadlines conservative
the same way a maximum over repeated runs would).

:func:`measure_stage_wcet_simulated` cross-checks the analytic number by
actually executing an isolated stage kernel on a one-context device; tests
assert both paths agree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.deadlines import apply_virtual_deadlines
from repro.core.task import StageSpec, TaskSpec
from repro.dnn.graph import LayerGraph
from repro.dnn.stages import StagePlan, partition_into_stages
from repro.gpu.allocator import AllocationParams
from repro.gpu.context import SimContext
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.gpu.spec import GpuDeviceSpec
from repro.sim.engine import SimulationEngine
from repro.speedup.calibration import DEFAULT_CALIBRATION, DeviceCalibration
from repro.speedup.composite import CompositeWorkload, composite_for_ops

#: Default multiplicative safety margin on measured execution times.
WCET_MARGIN = 1.05

#: Fraction of peak speedup that defines a stage's useful width.
WIDTH_DEMAND_FRACTION = 0.9


def profile_stage_wcets(
    composites: Sequence[CompositeWorkload],
    sms: float,
    margin: float = WCET_MARGIN,
) -> List[float]:
    """WCET of each stage at a partition of ``sms`` SMs (``C_i^j``)."""
    if sms <= 0:
        raise ValueError(f"sms must be positive, got {sms}")
    if margin < 1.0:
        raise ValueError(f"margin must be >= 1, got {margin}")
    return [margin * composite.time_at(sms) for composite in composites]


def prepare_task(
    name: str,
    graph: LayerGraph,
    period: float,
    num_stages: int,
    nominal_sms: float,
    relative_deadline: Optional[float] = None,
    release_offset: float = 0.0,
    calibration: DeviceCalibration = DEFAULT_CALIBRATION,
    margin: float = WCET_MARGIN,
) -> TaskSpec:
    """Run the complete offline phase for one task.

    Partitions the network into balanced stages, measures per-stage WCETs at
    the nominal partition size, and assigns proportional virtual deadlines
    (Section IV-A).  The returned task is ready for online scheduling.

    Parameters
    ----------
    name:
        Task name (unique within a task set).
    graph:
        The task's network.
    period:
        Release period (seconds).
    num_stages:
        How many stages to divide the network into (the paper uses 6).
    nominal_sms:
        Partition size WCETs are measured at (the pool's per-context SMs).
    relative_deadline:
        ``D_i``; defaults to the period (implicit deadline).
    """
    deadline = period if relative_deadline is None else relative_deadline
    plan: StagePlan = partition_into_stages(graph, num_stages)
    composites = [
        composite_for_ops(f"{name}/stage{i}", stage_ops, calibration)
        for i, stage_ops in enumerate(plan.stages)
    ]
    wcets = profile_stage_wcets(composites, nominal_sms, margin)
    task = TaskSpec(
        name=name,
        graph=graph,
        period=period,
        relative_deadline=deadline,
        release_offset=release_offset,
    )
    total_sms = float(calibration.total_sms)
    for index, (composite, wcet) in enumerate(zip(composites, wcets)):
        task.stages.append(
            StageSpec(
                index=index,
                name=composite.name,
                composite=composite,
                wcet=wcet,
                width_demand=composite.width_demand(total_sms, WIDTH_DEMAND_FRACTION),
            )
        )
    apply_virtual_deadlines(task)
    task.validate()
    return task


def measure_stage_wcet_simulated(
    composite: CompositeWorkload,
    sms: float,
    spec: Optional[GpuDeviceSpec] = None,
) -> float:
    """Measure a stage's isolated runtime by executing it on the simulator.

    Builds a one-context device of exactly ``sms`` SMs, runs a single stage
    kernel to completion, and returns the elapsed simulated time.  Used to
    validate that the analytic WCET (:func:`profile_stage_wcets` without
    margin) matches what the execution engine actually produces.
    """
    spec = spec or GpuDeviceSpec()
    engine = SimulationEngine()
    context = SimContext(0, nominal_sms=sms)
    device = GpuDevice(
        engine, spec, [context], AllocationParams(alpha=0.0, beta=0.0)
    )
    finished: List[float] = []
    device.on_kernel_complete = lambda kernel: finished.append(engine.now)
    kernel = StageKernel(
        label=f"profile:{composite.name}",
        curve=composite,
        work=composite.total_work + composite.overhead,
        width_demand=max(1.0, composite.width_demand(float(spec.total_sms))),
        deadline=float("inf"),
        priority=PriorityLevel.HIGH,
    )
    device.submit(kernel, context)
    engine.run()
    if not finished:
        raise RuntimeError(f"stage {composite.name!r} never completed")
    return finished[0]
